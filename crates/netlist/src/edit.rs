//! Netlist editing for MBR composition: merging registers into an MBR and
//! the inverse decomposition.
//!
//! Scan-chain note: production flows stitch scan chains *after* placement
//! optimization, so SI/SO data nets are often not yet routed when MBR
//! composition runs. The editor supports both situations: unwired scan data
//! pins impose no constraints; wired internal-scan chains are preserved when
//! the merged registers are chain-consecutive (the only configuration the
//! Section 2 ordered-section rule admits for internal-scan MBRs), and
//! per-bit-scan cells carry each bit's SI/SO across like D/Q pins.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use mbr_geom::Point;
use mbr_liberty::{CellId, Library, ScanStyle};

use crate::{Design, InstId, InstKind, PinKind, ScanInfo};

/// Why a netlist edit was rejected. The design is left unchanged whenever an
/// error is returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The group of registers to merge was empty.
    EmptyGroup,
    /// The same instance appeared twice in the group.
    DuplicateInGroup(String),
    /// A group member is not a live register.
    NotALiveRegister(String),
    /// A group member is marked `fixed` or `size_only`.
    Untouchable(String),
    /// A group member's functional class differs from the target cell's.
    ClassMismatch {
        /// Offending instance name.
        inst: String,
        /// Class the target MBR cell implements.
        expected: String,
        /// Class the instance has.
        found: String,
    },
    /// Control nets (clock, gating group, reset, set, enable, scan enable)
    /// differ across the group.
    IncompatibleControl {
        /// Which control differs.
        what: &'static str,
        /// Offending instance name.
        inst: String,
    },
    /// The group's total bit count exceeds the target cell width.
    WidthOverflow {
        /// Bits the group needs.
        need: usize,
        /// Bits the target cell has.
        have: u8,
    },
    /// Scan partitions differ across the group.
    ScanPartitionMismatch(String),
    /// An internal-scan merge would break a wired scan chain (the registers
    /// are not chain-consecutive).
    ScanChainBroken(String),
    /// `split_register` target cell is not a 1-bit cell of the same class.
    BadSplitTarget(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::EmptyGroup => write!(f, "register group is empty"),
            EditError::DuplicateInGroup(n) => write!(f, "register {n} listed twice in group"),
            EditError::NotALiveRegister(n) => write!(f, "{n} is not a live register"),
            EditError::Untouchable(n) => write!(f, "register {n} is fixed or size-only"),
            EditError::ClassMismatch {
                inst,
                expected,
                found,
            } => write!(
                f,
                "register {inst} has class {found}, target cell implements {expected}"
            ),
            EditError::IncompatibleControl { what, inst } => {
                write!(f, "register {inst} disagrees on {what} with the group")
            }
            EditError::WidthOverflow { need, have } => {
                write!(f, "group needs {need} bits but target cell has {have}")
            }
            EditError::ScanPartitionMismatch(n) => {
                write!(f, "register {n} is in a different scan partition")
            }
            EditError::ScanChainBroken(n) => write!(
                f,
                "internal-scan merge would break the wired scan chain at {n}"
            ),
            EditError::BadSplitTarget(n) => {
                write!(
                    f,
                    "split target cell {n} must be a 1-bit cell of the same class"
                )
            }
        }
    }
}

impl Error for EditError {}

impl Design {
    /// Pin `kind` of a register this edit just created from a library cell
    /// wide enough to carry it. Only called mid-mutation, after validation
    /// pinned `kind` inside the cell's pin set — returning an `Err` here
    /// would break the "design left unchanged whenever an error is
    /// returned" contract, so a miss (a logic bug) must panic instead.
    fn fresh_pin(&self, inst: InstId, kind: PinKind) -> crate::PinId {
        self.find_pin(inst, kind)
            // mbr-lint: allow(P1, infallible mid-mutation; an Err would violate the leave-unchanged edit contract)
            .expect("pin of freshly added cell")
    }
}

impl Design {
    /// Merges a group of compatible live registers into one instance of the
    /// library MBR cell `new_cell`, placed with its lower-left corner at
    /// `loc`.
    ///
    /// Bit k of the new MBR takes over the D and Q nets of the k-th source
    /// bit, walking the group in scan order (sources in ordered scan
    /// sections are sorted by chain position first, so an internal scan
    /// chain through the MBR preserves the section order, per Section 2).
    /// Control pins (clock, reset, set, enable, scan enable) connect to the
    /// shared nets the group agrees on. Source registers become tombstones.
    ///
    /// If the target cell is wider than the group's total bit count, the
    /// result is an *incomplete* MBR: surplus D/Q pins stay unconnected and
    /// [`Design::register_width`] reports only the connected bits.
    ///
    /// The new register's useful-skew [`crate::RegisterAttrs::clock_offset`] starts
    /// at 0; skew assignment runs later in the flow.
    ///
    /// # Errors
    ///
    /// Returns an [`EditError`] — and leaves the design untouched — if the
    /// group is empty or has duplicates, any member is not a live register or
    /// is designer-protected, classes or control nets disagree, the bits
    /// don't fit, or a wired internal scan chain cannot be preserved.
    pub fn merge_registers(
        &mut self,
        group: &[InstId],
        lib: &Library,
        new_cell: CellId,
        loc: Point,
    ) -> Result<InstId, EditError> {
        if group.is_empty() {
            return Err(EditError::EmptyGroup);
        }
        let mut seen = HashSet::new();
        for &g in group {
            if !seen.insert(g) {
                return Err(EditError::DuplicateInGroup(self.inst(g).name.clone()));
            }
        }

        let target = lib.cell(new_cell);
        let target_class = lib.class(target.class);

        // ---- validation (no mutation yet) ----
        let mut total_bits = 0usize;
        let mut first_attrs = None;
        let mut cells = std::collections::BTreeMap::new();
        for &g in group {
            let inst = self.inst(g);
            let attrs = match inst.register_attrs() {
                Some(a) if inst.is_register() => a,
                _ => return Err(EditError::NotALiveRegister(inst.name.clone())),
            };
            if attrs.is_untouchable() {
                return Err(EditError::Untouchable(inst.name.clone()));
            }
            let Some(cell_id) = inst.register_cell() else {
                return Err(EditError::NotALiveRegister(inst.name.clone()));
            };
            let cell = lib.cell(cell_id);
            if cell.class != target.class {
                return Err(EditError::ClassMismatch {
                    inst: inst.name.clone(),
                    expected: target_class.name.clone(),
                    found: lib.class(cell.class).name.clone(),
                });
            }
            if first_attrs.is_none() {
                first_attrs = Some(attrs.clone());
            }
            cells.insert(g, cell_id);
            total_bits += usize::from(self.register_width(g));
        }
        if total_bits > usize::from(target.width) {
            return Err(EditError::WidthOverflow {
                need: total_bits,
                have: target.width,
            });
        }

        let Some(first_attrs) = first_attrs else {
            return Err(EditError::EmptyGroup);
        };
        for &g in &group[1..] {
            let Some(attrs) = self.inst(g).register_attrs() else {
                return Err(EditError::NotALiveRegister(self.inst(g).name.clone()));
            };
            let name = || self.inst(g).name.clone();
            if attrs.clock != first_attrs.clock {
                return Err(EditError::IncompatibleControl {
                    what: "clock",
                    inst: name(),
                });
            }
            if attrs.gate_group != first_attrs.gate_group {
                return Err(EditError::IncompatibleControl {
                    what: "clock gating group",
                    inst: name(),
                });
            }
            if attrs.reset != first_attrs.reset {
                return Err(EditError::IncompatibleControl {
                    what: "reset",
                    inst: name(),
                });
            }
            if attrs.set != first_attrs.set {
                return Err(EditError::IncompatibleControl {
                    what: "set",
                    inst: name(),
                });
            }
            if attrs.enable != first_attrs.enable {
                return Err(EditError::IncompatibleControl {
                    what: "enable",
                    inst: name(),
                });
            }
            if attrs.scan_enable != first_attrs.scan_enable {
                return Err(EditError::IncompatibleControl {
                    what: "scan enable",
                    inst: name(),
                });
            }
            match (attrs.scan, first_attrs.scan) {
                (Some(a), Some(b)) if a.partition != b.partition => {
                    return Err(EditError::ScanPartitionMismatch(name()));
                }
                _ => {}
            }
        }

        // Order sources by scan position where known, so an internal chain
        // through the MBR keeps the section order.
        let mut ordered: Vec<InstId> = group.to_vec();
        ordered.sort_by_key(|&g| {
            self.inst(g)
                .register_attrs()
                .and_then(|a| a.scan)
                .and_then(|s| s.section)
                .map_or((u32::MAX, u32::MAX), |(sec, pos)| (sec, pos))
        });

        // Internal-scan chain preservation check (only when data pins are
        // actually wired).
        if target.scan_style == ScanStyle::Internal {
            for pair in ordered.windows(2) {
                let so = self
                    .find_pin(pair[0], PinKind::ScanOut(0))
                    .and_then(|p| self.pin(p).net);
                let si = self
                    .find_pin(pair[1], PinKind::ScanIn(0))
                    .and_then(|p| self.pin(p).net);
                if let (Some(so), Some(si)) = (so, si) {
                    if so != si {
                        return Err(EditError::ScanChainBroken(self.inst(pair[1]).name.clone()));
                    }
                }
            }
        }

        // ---- mutation ----
        let merged_scan = merged_scan_info(self, &ordered);
        let mut attrs = first_attrs;
        attrs.clock_offset = 0.0;
        attrs.scan = merged_scan;
        let name = self.generate_name("mbr_");
        let mbr = self.add_register(name, lib, new_cell, loc, attrs);

        // Collect the scan-boundary nets before sources are killed.
        let chain_in = self
            .find_pin(ordered[0], PinKind::ScanIn(0))
            .and_then(|p| self.pin(p).net);
        let chain_out = ordered
            .last()
            .and_then(|&last| self.find_pin(last, PinKind::ScanOut(0)))
            .and_then(|p| self.pin(p).net);

        let mut k: u8 = 0;
        for &src in &ordered {
            let src_cell = lib.cell(cells[&src]);
            for bit in self.register_bit_pins(src) {
                let d_net = self.pin(bit.d).net;
                let q_net = self.pin(bit.q).net;
                if let Some(n) = d_net {
                    let new_d = self.fresh_pin(mbr, PinKind::D(k));
                    self.connect(new_d, n);
                }
                if let Some(n) = q_net {
                    let new_q = self.fresh_pin(mbr, PinKind::Q(k));
                    self.connect(new_q, n);
                }
                // Per-bit scan cells carry each bit's chain hop across.
                if target.scan_style == ScanStyle::PerBit {
                    let src_si = match src_cell.scan_style {
                        ScanStyle::PerBit => self.find_pin(src, PinKind::ScanIn(bit.bit)),
                        ScanStyle::Internal if bit.bit == 0 => {
                            self.find_pin(src, PinKind::ScanIn(0))
                        }
                        _ => None,
                    };
                    let src_so = match src_cell.scan_style {
                        ScanStyle::PerBit => self.find_pin(src, PinKind::ScanOut(bit.bit)),
                        ScanStyle::Internal
                            if usize::from(bit.bit) + 1 == usize::from(src_cell.width) =>
                        {
                            self.find_pin(src, PinKind::ScanOut(0))
                        }
                        _ => None,
                    };
                    if let Some(n) = src_si.and_then(|p| self.pin(p).net) {
                        let new_si = self.fresh_pin(mbr, PinKind::ScanIn(k));
                        self.connect(new_si, n);
                    }
                    if let Some(n) = src_so.and_then(|p| self.pin(p).net) {
                        let new_so = self.fresh_pin(mbr, PinKind::ScanOut(k));
                        self.connect(new_so, n);
                    }
                }
                k += 1;
            }
        }

        if target.scan_style == ScanStyle::Internal {
            if let Some(n) = chain_in {
                let si = self.fresh_pin(mbr, PinKind::ScanIn(0));
                self.connect(si, n);
            }
            if let Some(n) = chain_out {
                let so = self.fresh_pin(mbr, PinKind::ScanOut(0));
                self.connect(so, n);
            }
        }

        // Record how many bits are actually wired (incomplete MBR support).
        if let InstKind::Register { connected_bits, .. } = &mut self.inst_mut(mbr).kind {
            *connected_bits = k;
        }

        for &src in &ordered {
            self.kill_instance(src);
        }
        Ok(mbr)
    }

    /// Removes a live register from the design: disconnects every pin
    /// (dead nets are reaped by [`Design::disconnect`]) and marks the
    /// instance dead. This is the structural "remove" edit of an ECO —
    /// downstream logic that was driven by the register simply loses that
    /// timing start point.
    ///
    /// # Errors
    ///
    /// [`EditError::NotALiveRegister`] if `inst` is not a live register;
    /// [`EditError::Untouchable`] if it is `fixed` or `size_only`.
    pub fn remove_register(&mut self, inst: InstId) -> Result<(), EditError> {
        let instance = self.inst(inst);
        let attrs = match instance.register_attrs() {
            Some(a) if instance.is_register() => a,
            _ => return Err(EditError::NotALiveRegister(instance.name.clone())),
        };
        if attrs.fixed || attrs.size_only {
            return Err(EditError::Untouchable(instance.name.clone()));
        }
        self.kill_instance(inst);
        Ok(())
    }

    /// Swaps a register's library cell for another cell of the same class
    /// and width — the "MBR sizing" move of the paper's Fig. 4 flow (after
    /// useful skew widens the slack, drive strengths can be reduced to cut
    /// area and clock pin capacitance).
    ///
    /// Connectivity and placement are preserved; pin capacitances and the
    /// footprint are updated from the new cell.
    ///
    /// # Errors
    ///
    /// [`EditError::BadSplitTarget`] if `new_cell` differs in class or
    /// width; [`EditError::NotALiveRegister`] if `inst` is not a live
    /// register; [`EditError::Untouchable`] if the register is `fixed`
    /// (`size_only` registers can be resized).
    pub fn resize_register(
        &mut self,
        inst: InstId,
        lib: &Library,
        new_cell: CellId,
    ) -> Result<(), EditError> {
        let instance = self.inst(inst);
        let attrs = match instance.register_attrs() {
            Some(a) if instance.is_register() => a,
            _ => return Err(EditError::NotALiveRegister(instance.name.clone())),
        };
        if attrs.fixed {
            return Err(EditError::Untouchable(instance.name.clone()));
        }
        let Some(old_cell) = instance.register_cell() else {
            return Err(EditError::NotALiveRegister(instance.name.clone()));
        };
        let old = lib.cell(old_cell);
        let new = lib.cell(new_cell);
        if new.class != old.class || new.width != old.width {
            return Err(EditError::BadSplitTarget(new.name.clone()));
        }
        let pins = instance.pins.clone();
        for p in pins {
            let kind = self.pin(p).kind;
            let new_cap = match kind {
                PinKind::Clock => Some(new.clock_pin_cap),
                PinKind::D(_)
                | PinKind::Reset
                | PinKind::Set
                | PinKind::Enable
                | PinKind::ScanEnable
                | PinKind::ScanIn(_) => Some(new.d_pin_cap),
                _ => None,
            };
            if let Some(cap) = new_cap {
                self.pin_set_cap(p, cap);
            }
        }
        let instance = self.inst_mut(inst);
        instance.width = new.footprint_w;
        instance.height = new.footprint_h;
        if let InstKind::Register { cell, .. } = &mut instance.kind {
            *cell = new_cell;
        }
        Ok(())
    }

    /// Decomposes a (multi-bit) register into 1-bit registers of `bit_cell`,
    /// one per connected bit — the inverse of [`Design::merge_registers`]
    /// and the paper's stated future-work enabler (decompose pre-existing
    /// 8-bit MBRs, then recompose them with the placement-aware ILP).
    ///
    /// The new registers are placed side by side across the footprint of the
    /// original. Returns the new instance ids, in bit order.
    ///
    /// # Errors
    ///
    /// Returns an [`EditError`] if `inst` is not a live, modifiable register
    /// or `bit_cell` is not a 1-bit cell of the same functional class.
    pub fn split_register(
        &mut self,
        inst: InstId,
        lib: &Library,
        bit_cell: CellId,
    ) -> Result<Vec<InstId>, EditError> {
        let instance = self.inst(inst);
        let attrs = match instance.register_attrs() {
            Some(a) if instance.is_register() => a.clone(),
            _ => return Err(EditError::NotALiveRegister(instance.name.clone())),
        };
        if attrs.is_untouchable() {
            return Err(EditError::Untouchable(instance.name.clone()));
        }
        let Some(src_cell_id) = instance.register_cell() else {
            return Err(EditError::NotALiveRegister(instance.name.clone()));
        };
        let src_cell = lib.cell(src_cell_id);
        let target = lib.cell(bit_cell);
        if target.width != 1 || target.class != src_cell.class {
            return Err(EditError::BadSplitTarget(target.name.clone()));
        }

        let base = instance.loc;
        let bits = self.register_bit_pins(inst);
        let mut out = Vec::with_capacity(bits.len());
        for (i, bit) in bits.iter().enumerate() {
            let d_net = self.pin(bit.d).net;
            let q_net = self.pin(bit.q).net;
            let mut bit_attrs = attrs.clone();
            bit_attrs.clock_offset = 0.0;
            // Keep the section id but give each bit its own slot in order.
            if let Some(scan) = &mut bit_attrs.scan {
                if let Some((sec, pos)) = scan.section {
                    scan.section = Some((sec, pos + i as u32));
                }
            }
            let name = self.generate_name("bit_");
            let loc = Point::new(base.x + target.footprint_w * i as i64, base.y);
            let new_reg = self.add_register(name, lib, bit_cell, loc, bit_attrs);
            if let Some(n) = d_net {
                let p = self.fresh_pin(new_reg, PinKind::D(0));
                self.connect(p, n);
            }
            if let Some(n) = q_net {
                let p = self.fresh_pin(new_reg, PinKind::Q(0));
                self.connect(p, n);
            }
            out.push(new_reg);
        }
        self.kill_instance(inst);
        Ok(out)
    }
}

/// Scan info of a merged group: the common partition, plus the section/start
/// position when the whole group forms one consecutive ordered run.
fn merged_scan_info(design: &Design, ordered: &[InstId]) -> Option<ScanInfo> {
    let infos: Vec<ScanInfo> = ordered
        .iter()
        .filter_map(|&g| design.inst(g).register_attrs().and_then(|a| a.scan))
        .collect();
    if infos.is_empty() {
        return None;
    }
    let partition = infos[0].partition;
    let mut section = infos[0].section;
    if infos.len() != ordered.len() {
        section = None;
    } else {
        for pair in infos.windows(2) {
            match (pair[0].section, pair[1].section) {
                (Some((s0, p0)), Some((s1, p1))) if s0 == s1 && p1 == p0 + 1 => {}
                _ => {
                    section = None;
                    break;
                }
            }
        }
    }
    Some(ScanInfo { partition, section })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegisterAttrs;
    use mbr_geom::Rect;
    use mbr_liberty::standard_library;

    fn die() -> Rect {
        Rect::new(Point::new(0, 0), Point::new(100_000, 100_000))
    }

    /// Builds `n` 1-bit DFF_R registers with wired D/Q nets, sharing clock
    /// and reset.
    fn fixture(n: usize) -> (Design, Vec<InstId>, mbr_liberty::Library) {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let cell = lib.cell_by_name("DFF_R_1X1").unwrap();
        let mut regs = Vec::new();
        for i in 0..n {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            let r = d.add_register(
                format!("r{i}"),
                &lib,
                cell,
                Point::new(2_000 * i as i64, 600),
                attrs,
            );
            let dn = d.add_net(format!("d{i}"));
            let qn = d.add_net(format!("q{i}"));
            let dp = d.find_pin(r, PinKind::D(0)).unwrap();
            let qp = d.find_pin(r, PinKind::Q(0)).unwrap();
            d.connect(dp, dn);
            d.connect(qp, qn);
            regs.push(r);
        }
        (d, regs, lib)
    }

    /// Every `Err` return must leave the design untouched (the edit
    /// contract): run the failing call on a clone and diff the observables.
    #[test]
    fn failed_edits_leave_the_design_unchanged() {
        let (mut d, regs, lib) = fixture(3);
        // Mixed clocks make the group invalid.
        let clk2 = d.add_net("clk2");
        d.inst_mut(regs[2]).register_attrs_mut().unwrap().clock = clk2;
        let cell4 = lib.cell_by_name("DFF_R_4X1").unwrap();
        let cell2 = lib.cell_by_name("DFF_R_2X1").unwrap();

        let snapshot = d.clone();
        assert!(d
            .merge_registers(&regs, &lib, cell4, Point::ORIGIN)
            .is_err());
        assert!(d.merge_registers(&[], &lib, cell4, Point::ORIGIN).is_err());
        assert!(d.resize_register(regs[0], &lib, cell2).is_err());
        assert!(d.split_register(regs[0], &lib, cell2).is_err());

        assert_eq!(d.live_inst_count(), snapshot.live_inst_count());
        assert_eq!(d.live_register_count(), snapshot.live_register_count());
        assert_eq!(d.total_register_bits(), snapshot.total_register_bits());
        assert_eq!(d.wirelength(), snapshot.wirelength());
        for (id, inst) in snapshot.live_insts() {
            assert_eq!(d.inst(id).name, inst.name);
            assert_eq!(d.inst(id).loc, inst.loc);
        }
    }

    #[test]
    fn merge_rewires_data_nets_bit_by_bit() {
        let (mut d, regs, lib) = fixture(4);
        let cell4 = lib.cell_by_name("DFF_R_4X1").unwrap();
        let mbr = d
            .merge_registers(&regs, &lib, cell4, Point::new(1_000, 600))
            .expect("compatible merge");
        assert_eq!(d.register_width(mbr), 4);
        assert_eq!(d.live_register_count(), 1);
        // Every original D/Q net now lands on the MBR.
        for i in 0..4u8 {
            let dn = d.net_by_name(&format!("d{i}")).unwrap();
            let sink = d.net_sinks(dn).next().expect("net still has its sink");
            assert_eq!(d.pin(sink).inst, mbr);
            assert_eq!(d.pin(sink).kind, PinKind::D(i));
        }
        // Sources are tombstones with no connections.
        for &r in &regs {
            assert!(!d.inst(r).alive);
            assert!(d.inst(r).pins.iter().all(|&p| d.pin(p).net.is_none()));
        }
        // Clock net has exactly one clock sink now.
        let clk = d.net_by_name("clk").unwrap();
        assert_eq!(d.net_sinks(clk).count(), 1);
    }

    #[test]
    fn merge_into_wider_cell_yields_incomplete_mbr() {
        let (mut d, regs, lib) = fixture(3);
        let cell4 = lib.cell_by_name("DFF_R_4X1").unwrap();
        let mbr = d
            .merge_registers(&regs, &lib, cell4, Point::new(0, 0))
            .expect("3 bits into a 4-bit cell");
        assert_eq!(d.register_width(mbr), 3, "only connected bits count");
        assert_eq!(d.register_bit_pins(mbr).len(), 3);
        // The 4th bit's pins are unconnected.
        let d3 = d.find_pin(mbr, PinKind::D(3)).unwrap();
        assert_eq!(d.pin(d3).net, None);
    }

    #[test]
    fn merge_rejects_mixed_clocks() {
        let (mut d, mut regs, lib) = fixture(2);
        let clk2 = d.add_net("clk2");
        let cell = lib.cell_by_name("DFF_R_1X1").unwrap();
        let mut attrs = RegisterAttrs::clocked(clk2);
        attrs.reset = d.net_by_name("rst").map(Some).unwrap();
        let odd = d.add_register("odd", &lib, cell, Point::new(9_000, 600), attrs);
        regs.push(odd);
        let cell4 = lib.cell_by_name("DFF_R_4X1").unwrap();
        let err = d
            .merge_registers(&regs, &lib, cell4, Point::ORIGIN)
            .unwrap_err();
        assert!(matches!(
            err,
            EditError::IncompatibleControl { what: "clock", .. }
        ));
        // Design untouched.
        assert_eq!(d.live_register_count(), 3);
    }

    #[test]
    fn merge_rejects_width_overflow_and_duplicates() {
        let (mut d, regs, lib) = fixture(3);
        let cell2 = lib.cell_by_name("DFF_R_2X1").unwrap();
        let err = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap_err();
        assert_eq!(err, EditError::WidthOverflow { need: 3, have: 2 });

        let dup = [regs[0], regs[0]];
        let err = d
            .merge_registers(&dup, &lib, cell2, Point::ORIGIN)
            .unwrap_err();
        assert!(matches!(err, EditError::DuplicateInGroup(_)));
    }

    #[test]
    fn merge_rejects_untouchable_and_dead_registers() {
        let (mut d, regs, lib) = fixture(2);
        d.inst_mut(regs[0]).register_attrs_mut().unwrap().fixed = true;
        let cell2 = lib.cell_by_name("DFF_R_2X1").unwrap();
        let err = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap_err();
        assert!(matches!(err, EditError::Untouchable(_)));

        d.inst_mut(regs[0]).register_attrs_mut().unwrap().fixed = false;
        let mbr = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap();
        let err = d
            .merge_registers(&[regs[0], mbr], &lib, cell2, Point::ORIGIN)
            .unwrap_err();
        assert!(matches!(err, EditError::NotALiveRegister(_)));
    }

    #[test]
    fn merge_rejects_class_mismatch() {
        let (mut d, mut regs, lib) = fixture(1);
        let clk = d.net_by_name("clk").unwrap();
        let plain = lib.cell_by_name("DFF_1X1").unwrap();
        let other = d.add_register(
            "p0",
            &lib,
            plain,
            Point::new(4_000, 600),
            RegisterAttrs::clocked(clk),
        );
        regs.push(other);
        let cell2 = lib.cell_by_name("DFF_R_2X1").unwrap();
        let err = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap_err();
        assert!(matches!(err, EditError::ClassMismatch { .. }));
    }

    #[test]
    fn merge_two_mbrs_concatenates_bits() {
        let (mut d, regs, lib) = fixture(4);
        let cell2 = lib.cell_by_name("DFF_R_2X1").unwrap();
        let a = d
            .merge_registers(&regs[..2], &lib, cell2, Point::new(0, 0))
            .unwrap();
        let b = d
            .merge_registers(&regs[2..], &lib, cell2, Point::new(4_000, 0))
            .unwrap();
        let cell4 = lib.cell_by_name("DFF_R_4X1").unwrap();
        let big = d
            .merge_registers(&[a, b], &lib, cell4, Point::new(2_000, 0))
            .unwrap();
        assert_eq!(d.register_width(big), 4);
        assert_eq!(d.live_register_count(), 1);
        // All four original D nets reach the 4-bit MBR.
        for i in 0..4u8 {
            let dn = d.net_by_name(&format!("d{i}")).unwrap();
            let sink = d.net_sinks(dn).next().unwrap();
            assert_eq!(d.pin(sink).inst, big);
        }
    }

    #[test]
    fn split_register_is_inverse_of_merge() {
        let (mut d, regs, lib) = fixture(4);
        let cell4 = lib.cell_by_name("DFF_R_4X1").unwrap();
        let mbr = d
            .merge_registers(&regs, &lib, cell4, Point::new(1_000, 600))
            .unwrap();
        let cell1 = lib.cell_by_name("DFF_R_1X1").unwrap();
        let bits = d.split_register(mbr, &lib, cell1).expect("split");
        assert_eq!(bits.len(), 4);
        assert_eq!(d.live_register_count(), 4);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(d.register_width(b), 1);
            let dn = d.net_by_name(&format!("d{i}")).unwrap();
            let sink = d.net_sinks(dn).next().unwrap();
            assert_eq!(d.pin(sink).inst, b, "bit order preserved through split");
        }
    }

    #[test]
    fn split_rejects_wrong_target() {
        let (mut d, regs, lib) = fixture(2);
        let cell2 = lib.cell_by_name("DFF_R_2X1").unwrap();
        let mbr = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap();
        // Wrong class.
        let plain1 = lib.cell_by_name("DFF_1X1").unwrap();
        assert!(matches!(
            d.split_register(mbr, &lib, plain1),
            Err(EditError::BadSplitTarget(_))
        ));
        // Wrong width.
        let wide = lib.cell_by_name("DFF_R_4X1").unwrap();
        assert!(matches!(
            d.split_register(mbr, &lib, wide),
            Err(EditError::BadSplitTarget(_))
        ));
    }

    #[test]
    fn merged_scan_info_keeps_consecutive_sections() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        let cell = lib.cell_by_name("SDFF_R_1X1").unwrap();
        let mut regs = Vec::new();
        for i in 0..2u32 {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            attrs.scan_enable = Some(se);
            attrs.scan = Some(ScanInfo {
                partition: 3,
                section: Some((7, 10 + i)),
            });
            regs.push(d.add_register(
                format!("s{i}"),
                &lib,
                cell,
                Point::new(2_000 * i as i64, 600),
                attrs,
            ));
        }
        let cell2 = lib.cell_by_name("SDFF_R_2X1").unwrap();
        let mbr = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap();
        let scan = d.inst(mbr).register_attrs().unwrap().scan.unwrap();
        assert_eq!(scan.partition, 3);
        assert_eq!(scan.section, Some((7, 10)));
    }

    #[test]
    fn merged_scan_info_drops_nonconsecutive_sections() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        let cell = lib.cell_by_name("SDFF_R_1X1").unwrap();
        let mut regs = Vec::new();
        for (i, pos) in [(0u32, 10u32), (1, 15)] {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            attrs.scan_enable = Some(se);
            attrs.scan = Some(ScanInfo {
                partition: 3,
                section: Some((7, pos)),
            });
            regs.push(d.add_register(
                format!("s{i}"),
                &lib,
                cell,
                Point::new(2_000 * i as i64, 600),
                attrs,
            ));
        }
        let cell2 = lib.cell_by_name("SDFF_R_2X1").unwrap();
        let mbr = d
            .merge_registers(&regs, &lib, cell2, Point::ORIGIN)
            .unwrap();
        let scan = d.inst(mbr).register_attrs().unwrap().scan.unwrap();
        assert_eq!(scan.partition, 3);
        assert_eq!(
            scan.section, None,
            "gapped positions lose the order guarantee"
        );
    }

    #[test]
    fn wired_internal_scan_chain_is_respected() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        let cell = lib.cell_by_name("SDFF_R_1X1").unwrap();
        let mut regs = Vec::new();
        for i in 0..3 {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            attrs.scan_enable = Some(se);
            attrs.scan = Some(ScanInfo {
                partition: 0,
                section: None,
            });
            regs.push(d.add_register(
                format!("s{i}"),
                &lib,
                cell,
                Point::new(2_000 * i, 600),
                attrs,
            ));
        }
        // Wire the chain s0 -> s1 -> s2.
        let head = d.add_net("scan_head");
        let mid0 = d.add_net("scan_mid0");
        let mid1 = d.add_net("scan_mid1");
        let tail = d.add_net("scan_tail");
        let chain = [head, mid0, mid1, tail];
        for (i, &r) in regs.iter().enumerate() {
            let si = d.find_pin(r, PinKind::ScanIn(0)).unwrap();
            let so = d.find_pin(r, PinKind::ScanOut(0)).unwrap();
            d.connect(si, chain[i]);
            d.connect(so, chain[i + 1]);
        }
        // Merging the chain-consecutive pair {s0, s1} works and keeps the
        // chain boundary nets.
        let cell2 = lib.cell_by_name("SDFF_R_2X1").unwrap();
        let mbr = d
            .merge_registers(&regs[..2], &lib, cell2, Point::ORIGIN)
            .expect("consecutive merge ok");
        let si = d.find_pin(mbr, PinKind::ScanIn(0)).unwrap();
        let so = d.find_pin(mbr, PinKind::ScanOut(0)).unwrap();
        assert_eq!(d.pin(si).net, Some(head));
        assert_eq!(d.pin(so).net, Some(mid1));

        // Merging the now non-consecutive pair {mbr, s2}... is consecutive
        // (mbr.SO drives mid1 which feeds s2.SI), so it succeeds too.
        let cell4 = lib.cell_by_name("SDFF_R_4X1").unwrap();
        let big = d
            .merge_registers(&[mbr, regs[2]], &lib, cell4, Point::ORIGIN)
            .expect("still chain-consecutive");
        let si = d.find_pin(big, PinKind::ScanIn(0)).unwrap();
        let so = d.find_pin(big, PinKind::ScanOut(0)).unwrap();
        assert_eq!(d.pin(si).net, Some(head));
        assert_eq!(d.pin(so).net, Some(tail));
    }

    #[test]
    fn wired_nonconsecutive_internal_scan_merge_fails() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        let cell = lib.cell_by_name("SDFF_R_1X1").unwrap();
        let mut regs = Vec::new();
        for i in 0..3 {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            attrs.scan_enable = Some(se);
            regs.push(d.add_register(
                format!("s{i}"),
                &lib,
                cell,
                Point::new(2_000 * i, 600),
                attrs,
            ));
        }
        let head = d.add_net("scan_head");
        let mid0 = d.add_net("scan_mid0");
        let mid1 = d.add_net("scan_mid1");
        let tail = d.add_net("scan_tail");
        let chain = [head, mid0, mid1, tail];
        for (i, &r) in regs.iter().enumerate() {
            let si = d.find_pin(r, PinKind::ScanIn(0)).unwrap();
            let so = d.find_pin(r, PinKind::ScanOut(0)).unwrap();
            d.connect(si, chain[i]);
            d.connect(so, chain[i + 1]);
        }
        // {s0, s2} skips s1: internal-scan merge must refuse.
        let cell2 = lib.cell_by_name("SDFF_R_2X1").unwrap();
        let err = d
            .merge_registers(&[regs[0], regs[2]], &lib, cell2, Point::ORIGIN)
            .unwrap_err();
        assert!(matches!(err, EditError::ScanChainBroken(_)));
    }
}

#[cfg(test)]
mod resize_tests {
    use super::*;
    use crate::RegisterAttrs;
    use mbr_geom::Rect;
    use mbr_liberty::standard_library;

    #[test]
    fn resize_swaps_drive_grade_in_place() {
        let lib = standard_library();
        let die = Rect::new(Point::new(0, 0), Point::new(90_000, 90_000));
        let mut d = Design::new("t", die);
        let clk = d.add_net("clk");
        let x2 = lib.cell_by_name("DFF_4X2").unwrap();
        let r = d.add_register(
            "r",
            &lib,
            x2,
            Point::new(1_000, 600),
            RegisterAttrs::clocked(clk),
        );
        let ck = d.register_clock_pin(r);
        let cap_before = d.pin(ck).cap;

        let x1 = lib.cell_by_name("DFF_4X1").unwrap();
        d.resize_register(r, &lib, x1).expect("same class/width");
        assert_eq!(d.inst(r).register_cell(), Some(x1));
        assert!(
            d.pin(ck).cap < cap_before,
            "weaker drive has lower clock cap"
        );
        assert_eq!(d.register_width(r), 4);
    }

    #[test]
    fn resize_rejects_width_or_class_change_and_fixed() {
        let lib = standard_library();
        let die = Rect::new(Point::new(0, 0), Point::new(90_000, 90_000));
        let mut d = Design::new("t", die);
        let clk = d.add_net("clk");
        let cell = lib.cell_by_name("DFF_4X1").unwrap();
        let r = d.add_register(
            "r",
            &lib,
            cell,
            Point::new(1_000, 600),
            RegisterAttrs::clocked(clk),
        );

        let wrong_width = lib.cell_by_name("DFF_8X1").unwrap();
        assert!(matches!(
            d.resize_register(r, &lib, wrong_width),
            Err(EditError::BadSplitTarget(_))
        ));
        let rst = d.add_net("rst");
        let _ = rst;
        let wrong_class = lib.cell_by_name("DFF_EN_4X1");
        if let Some(wc) = wrong_class {
            assert!(matches!(
                d.resize_register(r, &lib, wc),
                Err(EditError::BadSplitTarget(_))
            ));
        }
        d.inst_mut(r).register_attrs_mut().unwrap().fixed = true;
        let same = lib.cell_by_name("DFF_4X2").unwrap();
        assert!(matches!(
            d.resize_register(r, &lib, same),
            Err(EditError::Untouchable(_))
        ));
    }
}
