//! Scan-chain stitching: wiring the scan data path after composition.
//!
//! Production flows stitch (or re-stitch) scan chains once placement
//! optimization — including MBR composition — has settled, which is why the
//! composition engine treats scan mostly as *constraints* (partitions,
//! ordered sections) rather than wires. This module provides the stitching
//! step itself: [`Design::stitch_scan_chains`] builds one chain per scan
//! partition, honouring ordered sections and otherwise routing the chain
//! through a nearest-neighbour tour to keep scan wirelength down.
//!
//! Internal-scan MBRs contribute one hop (their shared SI/SO pins);
//! per-bit-scan MBRs are chained bit through bit. Any pre-existing scan-data
//! wiring is replaced.

use mbr_geom::{Dbu, Point};
use mbr_liberty::{Library, ScanStyle};

use crate::{Design, InstId, NetId, PinId, PinKind};

/// Statistics from [`Design::stitch_scan_chains`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStitchReport {
    /// Chains built (one per populated scan partition).
    pub chains: usize,
    /// Registers stitched onto chains.
    pub registers: usize,
    /// Total chain wirelength (sum of hop Manhattan distances), DBU.
    pub wirelength: Dbu,
}

impl Design {
    /// Builds one scan chain per scan partition over all live scan-capable
    /// registers that carry scan membership, replacing any existing scan
    /// data wiring.
    ///
    /// Chain order: registers in ordered sections come first, section by
    /// section in chain-position order (the invariant MBR composition
    /// preserved); the remaining registers follow in a greedy
    /// nearest-neighbour tour from the last ordered element (or the
    /// partition's leftmost register). Each chain gets fresh
    /// `scan_in_<p>`/`scan_out_<p>` ports on the die's left/right edges.
    pub fn stitch_scan_chains(&mut self, lib: &Library) -> ScanStitchReport {
        // Collect (partition, inst) for live scan-capable registers.
        let mut by_partition: std::collections::BTreeMap<u16, Vec<InstId>> =
            std::collections::BTreeMap::new();
        for (id, inst) in self.registers() {
            let Some(scan) = inst.register_attrs().and_then(|a| a.scan) else {
                continue;
            };
            let Some(cell) = inst.register_cell().map(|c| lib.cell(c)) else {
                continue;
            };
            if cell.scan_style == ScanStyle::None {
                continue;
            }
            by_partition.entry(scan.partition).or_default().push(id);
        }

        let mut report = ScanStitchReport::default();
        let die = self.die();
        for (partition, regs) in by_partition {
            let ordered = chain_order(self, &regs);
            // Disconnect existing scan-data wiring.
            for &r in &ordered {
                let pins: Vec<PinId> = self
                    .inst(r)
                    .pins
                    .iter()
                    .copied()
                    .filter(|&p| {
                        matches!(self.pin(p).kind, PinKind::ScanIn(_) | PinKind::ScanOut(_))
                    })
                    .collect();
                for p in pins {
                    // Old chain stubs may end at head/tail ports; take the
                    // ports off the nets too so nothing is left undriven.
                    if let Some(net) = self.pin(p).net {
                        let port_pins: Vec<PinId> = self
                            .net(net)
                            .pins
                            .iter()
                            .copied()
                            .filter(|&q| self.pin(q).kind == PinKind::Port)
                            .collect();
                        for q in port_pins {
                            self.disconnect(q);
                        }
                    }
                    self.disconnect(p);
                }
            }

            // Head/tail ports at the die edges, vertically spread per
            // partition.
            let y = die.lo().y + 600 * (1 + Dbu::from(partition));
            let head = self.unique_port_name(&format!("scan_in_{partition}"));
            let tail = self.unique_port_name(&format!("scan_out_{partition}"));
            let head_port = self.add_input_port(head, Point::new(die.lo().x, y), 1.0);
            let tail_port = self.add_output_port(tail, Point::new(die.hi().x, y), 1.0);

            let mut net_counter = 0usize;
            let mut new_net = |design: &mut Design| -> NetId {
                // Names must be fresh even across re-stitching runs.
                loop {
                    let name = format!("scan_p{partition}_{net_counter}");
                    net_counter += 1;
                    if design.net_by_name(&name).is_none() {
                        return design.add_net(name);
                    }
                }
            };

            let mut upstream: PinId = self.inst(head_port).pins[0];
            let mut upstream_pos = self.pin_position(upstream);
            for &r in &ordered {
                let Some(cell) = self.inst(r).register_cell().map(|c| lib.cell(c)) else {
                    continue;
                };
                // Scan pins exist per the cell's scan style; a bit whose pins
                // are somehow absent is skipped rather than chained blind.
                let si_so = |b: u8| {
                    Some((
                        self.find_pin(r, PinKind::ScanIn(b))?,
                        self.find_pin(r, PinKind::ScanOut(b))?,
                    ))
                };
                let hops: Vec<(PinId, PinId)> = match cell.scan_style {
                    ScanStyle::Internal => si_so(0).into_iter().collect(),
                    ScanStyle::PerBit => (0..cell.width).filter_map(si_so).collect(),
                    ScanStyle::None => unreachable!("filtered above"),
                };
                for (si, so) in hops {
                    let net = new_net(self);
                    self.connect(upstream, net);
                    self.connect(si, net);
                    let si_pos = self.pin_position(si);
                    report.wirelength += upstream_pos.manhattan(si_pos);
                    upstream = so;
                    upstream_pos = self.pin_position(so);
                }
                report.registers += 1;
            }
            // Close the chain into the tail port.
            let net = new_net(self);
            let tail_pin = self.inst(tail_port).pins[0];
            self.connect(upstream, net);
            self.connect(tail_pin, net);
            report.wirelength += upstream_pos.manhattan(self.pin_position(tail_pin));
            report.chains += 1;
        }
        report
    }

    fn unique_port_name(&self, base: &str) -> String {
        if self.inst_by_name(base).is_none() {
            return base.to_string();
        }
        let mut i = 1;
        loop {
            let name = format!("{base}_{i}");
            if self.inst_by_name(&name).is_none() {
                return name;
            }
            i += 1;
        }
    }
}

/// Chain order for one partition: ordered sections first (by section id and
/// position), then a nearest-neighbour tour over the rest.
fn chain_order(design: &Design, regs: &[InstId]) -> Vec<InstId> {
    let mut sectioned: Vec<(u32, u32, InstId)> = Vec::new();
    let mut free: Vec<InstId> = Vec::new();
    for &r in regs {
        match design
            .inst(r)
            .register_attrs()
            .and_then(|a| a.scan)
            .and_then(|s| s.section)
        {
            Some((sec, pos)) => sectioned.push((sec, pos, r)),
            None => free.push(r),
        }
    }
    sectioned.sort_unstable();
    let mut order: Vec<InstId> = sectioned.into_iter().map(|(_, _, r)| r).collect();

    // Nearest-neighbour tour over the unordered rest.
    let mut cursor = order
        .last()
        .map(|&r| design.inst(r).center())
        .unwrap_or_else(|| {
            free.iter()
                .map(|&r| design.inst(r).center())
                .min_by_key(|p| (p.x, p.y))
                .unwrap_or(Point::ORIGIN)
        });
    let mut remaining = free;
    while let Some(k) = remaining
        .iter()
        .enumerate()
        .min_by_key(|(_, &r)| design.inst(r).center().manhattan(cursor))
        .map(|(k, _)| k)
    {
        let r = remaining.swap_remove(k);
        cursor = design.inst(r).center();
        order.push(r);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegisterAttrs, ScanInfo};
    use mbr_geom::Rect;
    use mbr_liberty::standard_library;

    fn die() -> Rect {
        Rect::new(Point::new(0, 0), Point::new(120_000, 120_000))
    }

    /// Walks the chain from a head port, returning visited instance names.
    fn walk_chain(d: &Design, head: &str) -> Vec<String> {
        let port = d.inst_by_name(head).expect("head port");
        let mut pin = d.inst(port).pins[0];
        let mut visited = Vec::new();
        while let Some(net) = d.pin(pin).net {
            let Some(sink) = d.net_sinks(net).next() else {
                break;
            };
            let inst = d.pin(sink).inst;
            match d.pin(sink).kind {
                PinKind::ScanIn(b) => {
                    if b == 0 || visited.last() != Some(&d.inst(inst).name) {
                        visited.push(d.inst(inst).name.clone());
                    }
                    // Continue from the matching scan-out pin.
                    pin = d.find_pin(inst, PinKind::ScanOut(b)).expect("matching SO");
                }
                PinKind::Port => break, // reached the tail
                other => panic!("unexpected chain sink {other:?}"),
            }
        }
        visited
    }

    #[test]
    fn stitches_partitions_in_section_order_then_by_distance() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        for (name, net) in [("CLK", clk), ("RST", rst), ("SE", se)] {
            let port = d.add_input_port(name, Point::new(0, 0), 1.0);
            let pin = d.inst(port).pins[0];
            d.connect(pin, net);
        }
        let cell = lib.cell_by_name("SDFF_R_1X1").unwrap();
        let add = |name: &str, x: i64, part: u16, sec: Option<(u32, u32)>, d: &mut Design| {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            attrs.scan_enable = Some(se);
            attrs.scan = Some(ScanInfo {
                partition: part,
                section: sec,
            });
            d.add_register(name, &lib, cell, Point::new(x, 600), attrs)
        };
        // Partition 0: an ordered section (reverse placement order to prove
        // the section order wins) plus two free registers.
        add("s1", 50_000, 0, Some((3, 1)), &mut d);
        add("s0", 60_000, 0, Some((3, 0)), &mut d);
        add("far", 90_000, 0, None, &mut d);
        add("near", 55_000, 0, None, &mut d);
        // Partition 1: a lone register.
        add("solo", 10_000, 1, None, &mut d);

        let report = d.stitch_scan_chains(&lib);
        assert_eq!(report.chains, 2);
        assert_eq!(report.registers, 5);
        assert!(report.wirelength > 0);
        assert!(d.validate().is_empty(), "{:?}", d.validate());

        let chain0 = walk_chain(&d, "scan_in_0");
        assert_eq!(
            chain0,
            ["s0", "s1", "near", "far"],
            "section order, then NN tour"
        );
        let chain1 = walk_chain(&d, "scan_in_1");
        assert_eq!(chain1, ["solo"]);
    }

    #[test]
    fn per_bit_cells_chain_through_every_bit() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        for (name, net) in [("CLK", clk), ("RST", rst), ("SE", se)] {
            let port = d.add_input_port(name, Point::new(0, 0), 1.0);
            let pin = d.inst(port).pins[0];
            d.connect(pin, net);
        }
        let perbit = lib
            .cells()
            .find(|(_, c)| c.scan_style == ScanStyle::PerBit && c.width == 4)
            .map(|(id, _)| id)
            .expect("library has per-bit cells");
        let mut attrs = RegisterAttrs::clocked(clk);
        attrs.reset = Some(rst);
        attrs.scan_enable = Some(se);
        attrs.scan = Some(ScanInfo {
            partition: 0,
            section: None,
        });
        let r = d.add_register("pb", &lib, perbit, Point::new(30_000, 600), attrs);

        let report = d.stitch_scan_chains(&lib);
        assert_eq!(report.registers, 1);
        assert!(d.validate().is_empty());
        // All four bit hops are wired: SI(0..4) and SO(0..3) carry nets.
        for b in 0..4u8 {
            let si = d.find_pin(r, PinKind::ScanIn(b)).unwrap();
            assert!(d.pin(si).net.is_some(), "SI({b}) wired");
        }
        let chain = walk_chain(&d, "scan_in_0");
        assert_eq!(chain, ["pb"]);
    }

    #[test]
    fn restitching_replaces_old_wiring() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let rst = d.add_net("rst");
        let se = d.add_net("se");
        for (name, net) in [("CLK", clk), ("RST", rst), ("SE", se)] {
            let port = d.add_input_port(name, Point::new(0, 0), 1.0);
            let pin = d.inst(port).pins[0];
            d.connect(pin, net);
        }
        let cell = lib.cell_by_name("SDFF_R_1X1").unwrap();
        for i in 0..3i64 {
            let mut attrs = RegisterAttrs::clocked(clk);
            attrs.reset = Some(rst);
            attrs.scan_enable = Some(se);
            attrs.scan = Some(ScanInfo {
                partition: 0,
                section: None,
            });
            d.add_register(
                format!("r{i}"),
                &lib,
                cell,
                Point::new(10_000 * (i + 1), 600),
                attrs,
            );
        }
        let first = d.stitch_scan_chains(&lib);
        let second = d.stitch_scan_chains(&lib);
        assert_eq!(first.registers, second.registers);
        assert!(d.validate().is_empty(), "{:?}", d.validate());
        // The second stitching created new ports (unique names).
        assert!(d.inst_by_name("scan_in_0").is_some());
        assert!(d.inst_by_name("scan_in_0_1").is_some());
        let chain = walk_chain(&d, "scan_in_0_1");
        assert_eq!(chain.len(), 3);
    }
}
