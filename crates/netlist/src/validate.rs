//! Design-rule validation: structural checks run by tests and after edits.

use std::fmt;

use crate::{Design, InstKind, NetId, PinDir, PinId};

/// A structural problem found by [`Design::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A live net has more than one driving (output) pin.
    MultipleDrivers {
        /// The net.
        net: NetId,
        /// The competing drivers.
        drivers: Vec<PinId>,
    },
    /// A live net has sinks but no driver.
    UndrivenNet {
        /// The net.
        net: NetId,
    },
    /// A live net's pin list references a pin that does not point back.
    DanglingNetPin {
        /// The net.
        net: NetId,
        /// The inconsistent pin.
        pin: PinId,
    },
    /// A live instance footprint leaves the die area.
    OutsideDie {
        /// The offending instance name.
        inst: String,
    },
    /// A pin on a dead instance is still connected to a net.
    DeadInstanceConnected {
        /// The offending instance name.
        inst: String,
    },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::MultipleDrivers { net, drivers } => {
                write!(f, "{net} has {} drivers", drivers.len())
            }
            ValidationIssue::UndrivenNet { net } => write!(f, "{net} has sinks but no driver"),
            ValidationIssue::DanglingNetPin { net, pin } => {
                write!(f, "{net} lists {pin} which does not reference it back")
            }
            ValidationIssue::OutsideDie { inst } => write!(f, "{inst} is outside the die"),
            ValidationIssue::DeadInstanceConnected { inst } => {
                write!(f, "dead instance {inst} still has connected pins")
            }
        }
    }
}

impl Design {
    /// Runs structural design-rule checks and returns every issue found.
    ///
    /// An empty result means: each live net has exactly one driver (or is a
    /// driverless constant-like net with no sinks), net↔pin references are
    /// consistent, dead instances are fully disconnected, and all live
    /// instances sit inside the die.
    pub fn validate(&self) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();

        for (net_id, net) in self.live_nets() {
            let mut drivers = Vec::new();
            for &p in &net.pins {
                let pin = self.pin(p);
                if pin.net != Some(net_id) {
                    issues.push(ValidationIssue::DanglingNetPin {
                        net: net_id,
                        pin: p,
                    });
                }
                if pin.dir == PinDir::Output {
                    drivers.push(p);
                }
            }
            if drivers.len() > 1 {
                issues.push(ValidationIssue::MultipleDrivers {
                    net: net_id,
                    drivers,
                });
            } else if drivers.is_empty() && self.net_sinks(net_id).next().is_some() {
                issues.push(ValidationIssue::UndrivenNet { net: net_id });
            }
        }

        let die = self.die();
        for (_, inst) in self.all_insts() {
            if inst.alive {
                if !matches!(inst.kind, InstKind::Port { .. }) && !die.contains_rect(&inst.rect()) {
                    issues.push(ValidationIssue::OutsideDie {
                        inst: inst.name.clone(),
                    });
                }
            } else if inst.pins.iter().any(|&p| self.pin(p).net.is_some()) {
                issues.push(ValidationIssue::DeadInstanceConnected {
                    inst: inst.name.clone(),
                });
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegisterAttrs;
    use mbr_geom::{Point, Rect};
    use mbr_liberty::standard_library;

    fn die() -> Rect {
        Rect::new(Point::new(0, 0), Point::new(100_000, 100_000))
    }

    #[test]
    fn clean_design_validates() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let cp = d.add_input_port("CLK", Point::ORIGIN, 1.0);
        d.connect(d.inst(cp).pins[0], clk);
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        let r = d.add_register(
            "r0",
            &lib,
            cell,
            Point::new(1000, 600),
            RegisterAttrs::clocked(clk),
        );
        let q = d.add_net("q");
        d.connect(d.find_pin(r, crate::PinKind::Q(0)).unwrap(), q);
        let out = d.add_output_port("O", Point::new(90_000, 0), 1.0);
        d.connect(d.inst(out).pins[0], q);
        assert!(d.validate().is_empty(), "{:?}", d.validate());
    }

    #[test]
    fn detects_multiple_drivers() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let cp = d.add_input_port("CLK", Point::ORIGIN, 1.0);
        d.connect(d.inst(cp).pins[0], clk);
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        let r0 = d.add_register(
            "r0",
            &lib,
            cell,
            Point::new(1000, 600),
            RegisterAttrs::clocked(clk),
        );
        let r1 = d.add_register(
            "r1",
            &lib,
            cell,
            Point::new(3000, 600),
            RegisterAttrs::clocked(clk),
        );
        let n = d.add_net("n");
        d.connect(d.find_pin(r0, crate::PinKind::Q(0)).unwrap(), n);
        d.connect(d.find_pin(r1, crate::PinKind::Q(0)).unwrap(), n);
        d.connect(d.find_pin(r0, crate::PinKind::D(0)).unwrap(), n);
        let issues = d.validate();
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::MultipleDrivers { .. })));
    }

    #[test]
    fn detects_undriven_net_and_outside_die() {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        let r = d.add_register(
            "r0",
            &lib,
            cell,
            Point::new(99_900, 99_900), // footprint exceeds the die
            RegisterAttrs::clocked(clk),
        );
        let n = d.add_net("n");
        d.connect(d.find_pin(r, crate::PinKind::D(0)).unwrap(), n);
        let issues = d.validate();
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::UndrivenNet { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::OutsideDie { .. })));
        // clk is undriven too (no clock port in this fixture).
        assert!(issues.len() >= 3);
    }
}
