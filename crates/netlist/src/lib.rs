#![warn(missing_docs)]
//! Placed-design database for multi-bit register composition.
//!
//! The netlist is the substrate every other crate operates on: a flat,
//! placed, gate-level design with first-class register metadata. It models
//! exactly what the DAC'17 composition flow needs:
//!
//! * instances ([`Instance`]) — registers (single- or multi-bit, pointing at
//!   an [`mbr_liberty`] cell), combinational gates (via lightweight
//!   [`CombModel`]s), and ports,
//! * nets and pins with cell-relative pin offsets (used by the Section 4.2
//!   placement LP),
//! * register attributes: clock net and clock-gating group, reset/set/enable
//!   control nets, scan partition / ordered-section / chain position, and
//!   `fixed` / `size_only` designer constraints (Section 2),
//! * netlist editing for composition: [`Design::merge_registers`] rewires a
//!   group of compatible registers into one MBR instance, and
//!   [`Design::split_register`] performs the inverse decomposition (the
//!   paper's stated future-work extension),
//! * wirelength accounting (total and clock HPWL) and design-rule validation,
//! * a handwritten parser/writer for the `.design` text format
//!   ([`Design::parse`], [`Design::to_design_text`]).
//!
//! # Examples
//!
//! Build a two-register design and merge the registers into a 2-bit MBR:
//!
//! ```
//! use mbr_geom::{Point, Rect};
//! use mbr_liberty::standard_library;
//! use mbr_netlist::{Design, RegisterAttrs};
//!
//! let lib = standard_library();
//! let mut design = Design::new("demo", Rect::new(Point::new(0, 0), Point::new(100_000, 100_000)));
//! let clk = design.add_net("clk");
//! let cell1 = lib.cell_by_name("DFF_1X1").expect("1-bit flop");
//! let attrs = RegisterAttrs::clocked(clk);
//! let r0 = design.add_register("r0", &lib, cell1, mbr_geom::Point::new(1_000, 600), attrs.clone());
//! let r1 = design.add_register("r1", &lib, cell1, mbr_geom::Point::new(3_000, 600), attrs);
//! # use mbr_netlist::PinKind;
//! # let d0 = design.add_net("d0"); let q0 = design.add_net("q0");
//! # let d1 = design.add_net("d1"); let q1 = design.add_net("q1");
//! # design.connect(design.find_pin(r0, PinKind::D(0)).unwrap(), d0);
//! # design.connect(design.find_pin(r0, PinKind::Q(0)).unwrap(), q0);
//! # design.connect(design.find_pin(r1, PinKind::D(0)).unwrap(), d1);
//! # design.connect(design.find_pin(r1, PinKind::Q(0)).unwrap(), q1);
//! let cell2 = lib.cell_by_name("DFF_2X1").expect("2-bit flop");
//! let mbr = design.merge_registers(&[r0, r1], &lib, cell2, mbr_geom::Point::new(2_000, 600))?;
//! assert_eq!(design.register_width(mbr), 2);
//! assert_eq!(design.live_register_count(), 1);
//! # Ok::<(), mbr_netlist::EditError>(())
//! ```

mod comb;
mod compact;
mod design;
mod edit;
mod ids;
mod instance;
mod parse;
mod scan;
mod validate;

pub use comb::CombModel;
pub use design::{register_data_pin_offset, Design};
pub use edit::EditError;
pub use ids::{CombModelId, InstId, NetId, PinId};
pub use instance::{
    BitPins, InstKind, Instance, PinDir, PinKind, PortDir, RegisterAttrs, ScanInfo,
};
pub use parse::ParseDesignError;
pub use scan::ScanStitchReport;
pub use validate::ValidationIssue;
