//! Handwritten parser and writer for the `.design` text format.
//!
//! A `.design` file is a placed gate-level netlist with register metadata:
//!
//! ```text
//! design "demo" {
//!   die 0 0 400000 300000;
//!   comb_model NAND2 { inputs 2; area 0.8; cap 0.7; rdrive 4.0; tintr 18; size 400 600; }
//!   port CLK in (0 300) rdrive 1.0 net clk;
//!   port OUT out (400000 300) load 1.5 net y;
//!   inst r0 reg DFF_R_1X1 (10000 600) {
//!     clock clk; gate 0; reset rst_n; skew 0;
//!     scan part 1 section 0 pos 4;
//!     d 0 nd0; q 0 nq0;
//!   }
//!   inst g0 comb NAND2 (12000 600) { in 0 nq0; in 1 nd0; out y; }
//! }
//! ```
//!
//! Register cells are resolved against an [`mbr_liberty::Library`], so
//! parsing takes the library as an argument. Nets are created implicitly on
//! first reference. Like the `.mbrlib` parser this is a hand-rolled lexer +
//! recursive descent — no parser generators.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use mbr_geom::{Point, Rect};
use mbr_liberty::Library;

use crate::{CombModel, Design, InstKind, PinKind, PortDir, RegisterAttrs, ScanInfo};

/// Error produced when parsing a `.design` file fails, with 1-based
/// line/column of the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDesignError {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseDesignError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tok_line: u32,
    tok_col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tok_line: 1,
            tok_col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseDesignError {
        ParseDesignError {
            line: self.tok_line,
            col: self.tok_col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Tok, ParseDesignError> {
        self.skip_trivia();
        self.tok_line = self.line;
        self.tok_col = self.col;
        let Some(b) = self.peek() else {
            return Ok(Tok::Eof);
        };
        match b {
            b'{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b';' => {
                self.bump();
                Ok(Tok::Semi)
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\n') | None => return Err(self.err("unterminated string")),
                        Some(c) => s.push(c as char),
                    }
                }
                Ok(Tok::Str(s))
            }
            b'-' | b'+' | b'0'..=b'9' => {
                let start = self.pos;
                self.bump();
                while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E')) {
                    self.bump();
                }
                // exponent sign
                if matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                    && matches!(self.peek(), Some(b'-' | b'+'))
                {
                    self.bump();
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-ASCII bytes in number"))?;
                text.parse::<f64>()
                    .map(Tok::Num)
                    .map_err(|_| self.err(format!("invalid number `{text}`")))
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b'[' || c == b']')
                {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-ASCII bytes in identifier"))?;
                Ok(Tok::Ident(text.to_owned()))
            }
            other if other.is_ascii() => {
                Err(self.err(format!("unexpected character `{}`", other as char)))
            }
            other => Err(self.err(format!("unexpected non-ASCII byte 0x{other:02X}"))),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    lib: &'a Library,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, lib: &'a Library) -> Result<Self, ParseDesignError> {
        let mut lexer = Lexer::new(src);
        let tok = lexer.next_tok()?;
        Ok(Parser { lexer, tok, lib })
    }

    fn err(&self, m: impl Into<String>) -> ParseDesignError {
        self.lexer.err(m)
    }

    fn advance(&mut self) -> Result<Tok, ParseDesignError> {
        let next = self.lexer.next_tok()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect_ident(&mut self) -> Result<String, ParseDesignError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseDesignError> {
        let got = self.expect_ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{got}`")))
        }
    }

    fn expect_tok(&mut self, want: Tok) -> Result<(), ParseDesignError> {
        let got = self.advance()?;
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, found {got:?}")))
        }
    }

    fn expect_num(&mut self) -> Result<f64, ParseDesignError> {
        match self.advance()? {
            Tok::Num(n) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseDesignError> {
        let n = self.expect_num()?;
        // 2^53 bounds the range where f64 represents every integer exactly;
        // beyond it the `as i64` cast would silently land on a nearby value.
        if n.fract() != 0.0 || n.abs() > 9_007_199_254_740_992.0 {
            return Err(self.err(format!("expected integer, found {n}")));
        }
        Ok(n as i64)
    }

    /// An integer in `0..=max`, for fields stored in narrow unsigned types.
    fn expect_int_in(&mut self, what: &str, max: i64) -> Result<i64, ParseDesignError> {
        let v = self.expect_int()?;
        if !(0..=max).contains(&v) {
            return Err(self.err(format!("{what} {v} out of range 0..={max}")));
        }
        Ok(v)
    }

    fn expect_point(&mut self) -> Result<Point, ParseDesignError> {
        self.expect_tok(Tok::LParen)?;
        let x = self.expect_int()?;
        let y = self.expect_int()?;
        self.expect_tok(Tok::RParen)?;
        Ok(Point::new(x, y))
    }

    fn parse_design(&mut self) -> Result<Design, ParseDesignError> {
        self.expect_keyword("design")?;
        let name = match self.advance()? {
            Tok::Str(s) | Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected design name, found {other:?}"))),
        };
        self.expect_tok(Tok::LBrace)?;
        self.expect_keyword("die")?;
        let x0 = self.expect_int()?;
        let y0 = self.expect_int()?;
        let x1 = self.expect_int()?;
        let y1 = self.expect_int()?;
        self.expect_tok(Tok::Semi)?;
        let mut design = Design::new(name, Rect::new(Point::new(x0, y0), Point::new(x1, y1)));

        loop {
            match self.advance()? {
                Tok::RBrace => break,
                Tok::Ident(kw) if kw == "comb_model" => self.parse_comb_model(&mut design)?,
                Tok::Ident(kw) if kw == "port" => self.parse_port(&mut design)?,
                Tok::Ident(kw) if kw == "inst" => self.parse_inst(&mut design)?,
                other => {
                    return Err(self.err(format!(
                        "expected `comb_model`, `port`, `inst` or `}}`, found {other:?}"
                    )))
                }
            }
        }
        match self.advance()? {
            Tok::Eof => Ok(design),
            other => Err(self.err(format!("trailing content: {other:?}"))),
        }
    }

    fn parse_comb_model(&mut self, design: &mut Design) -> Result<(), ParseDesignError> {
        let name = self.expect_ident()?;
        self.expect_tok(Tok::LBrace)?;
        let mut inputs = None;
        let mut area = None;
        let mut cap = None;
        let mut rdrive = None;
        let mut tintr = None;
        let mut size = None;
        loop {
            let key = match self.advance()? {
                Tok::RBrace => break,
                Tok::Ident(k) => k,
                other => return Err(self.err(format!("expected attribute, found {other:?}"))),
            };
            match key.as_str() {
                "inputs" => inputs = Some(self.expect_int()?),
                "area" => area = Some(self.expect_num()?),
                "cap" => cap = Some(self.expect_num()?),
                "rdrive" => rdrive = Some(self.expect_num()?),
                "tintr" => tintr = Some(self.expect_num()?),
                "size" => {
                    let w = self.expect_int()?;
                    let h = self.expect_int()?;
                    size = Some((w, h));
                }
                other => return Err(self.err(format!("unknown comb attribute `{other}`"))),
            }
            self.expect_tok(Tok::Semi)?;
        }
        let missing =
            |p: &Self, n: &str, what: &str| p.err(format!("comb_model {n} missing `{what}`"));
        let inputs = inputs.ok_or_else(|| missing(self, &name, "inputs"))?;
        if !(1..=255).contains(&inputs) {
            return Err(self.err(format!(
                "comb_model {name} has invalid input count {inputs}"
            )));
        }
        let (footprint_w, footprint_h) = size.ok_or_else(|| missing(self, &name, "size"))?;
        let input_cap = cap.ok_or_else(|| missing(self, &name, "cap"))?;
        let drive_resistance = rdrive.ok_or_else(|| missing(self, &name, "rdrive"))?;
        let intrinsic_delay = tintr.ok_or_else(|| missing(self, &name, "tintr"))?;
        design.add_comb_model(CombModel {
            name,
            inputs: inputs as u8,
            area: area.unwrap_or(1.0),
            input_cap,
            drive_resistance,
            intrinsic_delay,
            footprint_w,
            footprint_h,
        });
        Ok(())
    }

    fn parse_port(&mut self, design: &mut Design) -> Result<(), ParseDesignError> {
        let name = self.expect_ident()?;
        let dir = match self.expect_ident()?.as_str() {
            "in" => PortDir::Input,
            "out" => PortDir::Output,
            other => return Err(self.err(format!("expected `in`/`out`, found `{other}`"))),
        };
        let loc = self.expect_point()?;
        let mut rdrive = 1.0;
        let mut load = 1.0;
        let mut net = None;
        loop {
            match self.advance()? {
                Tok::Semi => break,
                Tok::Ident(k) if k == "rdrive" => rdrive = self.expect_num()?,
                Tok::Ident(k) if k == "load" => load = self.expect_num()?,
                Tok::Ident(k) if k == "net" => net = Some(self.expect_ident()?),
                other => return Err(self.err(format!("unexpected port attribute {other:?}"))),
            }
        }
        let inst = match dir {
            PortDir::Input => design.add_input_port(name, loc, rdrive),
            PortDir::Output => design.add_output_port(name, loc, load),
        };
        if let Some(netname) = net {
            let n = design.add_net(netname);
            let pin = design.inst(inst).pins[0];
            design.connect(pin, n);
        }
        Ok(())
    }

    fn parse_inst(&mut self, design: &mut Design) -> Result<(), ParseDesignError> {
        let name = self.expect_ident()?;
        let kind = self.expect_ident()?;
        match kind.as_str() {
            "reg" => self.parse_register(design, name),
            "comb" => self.parse_comb_inst(design, name),
            other => Err(self.err(format!("expected `reg` or `comb`, found `{other}`"))),
        }
    }

    fn parse_register(
        &mut self,
        design: &mut Design,
        name: String,
    ) -> Result<(), ParseDesignError> {
        let cell_name = self.expect_ident()?;
        let cell = self
            .lib
            .cell_by_name(&cell_name)
            .ok_or_else(|| self.err(format!("unknown library cell `{cell_name}`")))?;
        let loc = self.expect_point()?;
        self.expect_tok(Tok::LBrace)?;

        let mut clock = None;
        let mut gate_group = 0u32;
        let mut reset = None;
        let mut set = None;
        let mut enable = None;
        let mut scan_enable = None;
        let mut scan = None;
        let mut fixed = false;
        let mut size_only = false;
        let mut skew = 0.0;
        // (kind, bit, net name)
        let mut conns: Vec<(char, u8, String)> = Vec::new();

        loop {
            let key = match self.advance()? {
                Tok::RBrace => break,
                Tok::Ident(k) => k,
                other => {
                    return Err(self.err(format!("expected register statement, found {other:?}")))
                }
            };
            match key.as_str() {
                "clock" => clock = Some(self.expect_ident()?),
                "gate" => {
                    gate_group = self.expect_int_in("gate group", i64::from(u32::MAX))? as u32;
                }
                "reset" => reset = Some(self.expect_ident()?),
                "set" => set = Some(self.expect_ident()?),
                "enable" => enable = Some(self.expect_ident()?),
                "scan_enable" => scan_enable = Some(self.expect_ident()?),
                "skew" => skew = self.expect_num()?,
                "fixed" => fixed = true,
                "sizeonly" => size_only = true,
                "scan" => {
                    self.expect_keyword("part")?;
                    let partition =
                        self.expect_int_in("scan partition", i64::from(u16::MAX))? as u16;
                    let mut section = None;
                    if let Tok::Ident(ref k) = self.tok {
                        if k == "section" {
                            self.advance()?;
                            let sec =
                                self.expect_int_in("scan section", i64::from(u32::MAX))? as u32;
                            self.expect_keyword("pos")?;
                            let pos =
                                self.expect_int_in("scan position", i64::from(u32::MAX))? as u32;
                            section = Some((sec, pos));
                        }
                    }
                    scan = Some(ScanInfo { partition, section });
                }
                "d" | "q" | "si" | "so" => {
                    let bit = self.expect_int_in("bit index", 255)?;
                    let net = self.expect_ident()?;
                    let tag = match key.as_str() {
                        "d" => 'd',
                        "q" => 'q',
                        "si" => 'i',
                        _ => 'o',
                    };
                    conns.push((tag, bit as u8, net));
                }
                other => return Err(self.err(format!("unknown register statement `{other}`"))),
            }
            self.expect_tok(Tok::Semi)?;
        }

        let clock = clock.ok_or_else(|| self.err(format!("register {name} missing `clock`")))?;
        let mut attrs = RegisterAttrs::clocked(design.add_net(clock));
        attrs.gate_group = gate_group;
        attrs.reset = reset.map(|n| design.add_net(n));
        attrs.set = set.map(|n| design.add_net(n));
        attrs.enable = enable.map(|n| design.add_net(n));
        attrs.scan_enable = scan_enable.map(|n| design.add_net(n));
        attrs.scan = scan;
        attrs.fixed = fixed;
        attrs.size_only = size_only;
        attrs.clock_offset = skew;

        if design.inst_by_name(&name).is_some() {
            return Err(self.err(format!("duplicate instance `{name}`")));
        }
        let inst = design.add_register(name.clone(), self.lib, cell, loc, attrs);
        for (tag, bit, netname) in conns {
            let kind = match tag {
                'd' => PinKind::D(bit),
                'q' => PinKind::Q(bit),
                'i' => PinKind::ScanIn(bit),
                _ => PinKind::ScanOut(bit),
            };
            let pin = design
                .find_pin(inst, kind)
                .ok_or_else(|| self.err(format!("register {name} has no {kind:?} pin")))?;
            let net = design.add_net(netname);
            design.connect(pin, net);
        }
        // Recompute connected bits from the wiring just made.
        let connected = design.register_bit_pins(inst).len() as u8;
        if let InstKind::Register { connected_bits, .. } = &mut design.inst_mut(inst).kind {
            *connected_bits = connected;
        }
        Ok(())
    }

    fn parse_comb_inst(
        &mut self,
        design: &mut Design,
        name: String,
    ) -> Result<(), ParseDesignError> {
        let model_name = self.expect_ident()?;
        let model = design
            .comb_model_by_name(&model_name)
            .ok_or_else(|| self.err(format!("unknown comb model `{model_name}`")))?;
        let loc = self.expect_point()?;
        self.expect_tok(Tok::LBrace)?;
        if design.inst_by_name(&name).is_some() {
            return Err(self.err(format!("duplicate instance `{name}`")));
        }
        let inst = design.add_comb(name.clone(), model, loc);
        loop {
            let key = match self.advance()? {
                Tok::RBrace => break,
                Tok::Ident(k) => k,
                other => return Err(self.err(format!("expected pin statement, found {other:?}"))),
            };
            let kind = match key.as_str() {
                "in" => {
                    let i = self.expect_int_in("gate input index", 255)?;
                    PinKind::GateIn(i as u8)
                }
                "out" => PinKind::GateOut,
                other => return Err(self.err(format!("unknown pin statement `{other}`"))),
            };
            let netname = self.expect_ident()?;
            self.expect_tok(Tok::Semi)?;
            let pin = design
                .find_pin(inst, kind)
                .ok_or_else(|| self.err(format!("gate {name} has no {kind:?} pin")))?;
            let net = design.add_net(netname);
            design.connect(pin, net);
        }
        Ok(())
    }
}

impl Design {
    /// Parses a design from `.design` text, resolving register cells against
    /// `lib`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDesignError`] with line/column information on the first
    /// syntax or semantic error (unknown cell/model, duplicate instance,
    /// missing clock, malformed token).
    pub fn parse(src: &str, lib: &Library) -> Result<Design, ParseDesignError> {
        Parser::new(src, lib)?.parse_design()
    }

    /// Serializes the design to `.design` text. Live instances only; the
    /// output round-trips through [`Design::parse`] with the same library.
    pub fn to_design_text(&self, lib: &Library) -> String {
        let mut out = String::new();
        let die = self.die();
        let _ = writeln!(out, "design \"{}\" {{", self.name());
        let _ = writeln!(
            out,
            "  die {} {} {} {};",
            die.lo().x,
            die.lo().y,
            die.hi().x,
            die.hi().y
        );
        for (_, m) in self.comb_models() {
            let _ = writeln!(
                out,
                "  comb_model {} {{ inputs {}; area {}; cap {}; rdrive {}; tintr {}; size {} {}; }}",
                m.name, m.inputs, m.area, m.input_cap, m.drive_resistance, m.intrinsic_delay,
                m.footprint_w, m.footprint_h
            );
        }
        for (id, inst) in self.live_insts() {
            match &inst.kind {
                InstKind::Port {
                    dir,
                    drive_resistance,
                    load,
                } => {
                    let net = inst.pins.first().and_then(|&p| self.pin(p).net);
                    let netpart = net
                        .map(|n| format!(" net {}", self.net(n).name))
                        .unwrap_or_default();
                    match dir {
                        PortDir::Input => {
                            let _ = writeln!(
                                out,
                                "  port {} in ({} {}) rdrive {}{};",
                                inst.name, inst.loc.x, inst.loc.y, drive_resistance, netpart
                            );
                        }
                        PortDir::Output => {
                            let _ = writeln!(
                                out,
                                "  port {} out ({} {}) load {}{};",
                                inst.name, inst.loc.x, inst.loc.y, load, netpart
                            );
                        }
                    }
                }
                InstKind::Register { cell, attrs, .. } => {
                    let _ = writeln!(
                        out,
                        "  inst {} reg {} ({} {}) {{",
                        inst.name,
                        lib.cell(*cell).name,
                        inst.loc.x,
                        inst.loc.y
                    );
                    let _ = writeln!(out, "    clock {};", self.net(attrs.clock).name);
                    if attrs.gate_group != 0 {
                        let _ = writeln!(out, "    gate {};", attrs.gate_group);
                    }
                    for (kw, net) in [
                        ("reset", attrs.reset),
                        ("set", attrs.set),
                        ("enable", attrs.enable),
                        ("scan_enable", attrs.scan_enable),
                    ] {
                        if let Some(n) = net {
                            let _ = writeln!(out, "    {kw} {};", self.net(n).name);
                        }
                    }
                    if attrs.clock_offset != 0.0 {
                        let _ = writeln!(out, "    skew {};", attrs.clock_offset);
                    }
                    if attrs.fixed {
                        let _ = writeln!(out, "    fixed;");
                    }
                    if attrs.size_only {
                        let _ = writeln!(out, "    sizeonly;");
                    }
                    if let Some(scan) = attrs.scan {
                        match scan.section {
                            Some((sec, pos)) => {
                                let _ = writeln!(
                                    out,
                                    "    scan part {} section {sec} pos {pos};",
                                    scan.partition
                                );
                            }
                            None => {
                                let _ = writeln!(out, "    scan part {};", scan.partition);
                            }
                        }
                    }
                    for &p in &inst.pins {
                        let pin = self.pin(p);
                        let Some(net) = pin.net else { continue };
                        let netname = &self.net(net).name;
                        match pin.kind {
                            PinKind::D(b) => {
                                let _ = writeln!(out, "    d {b} {netname};");
                            }
                            PinKind::Q(b) => {
                                let _ = writeln!(out, "    q {b} {netname};");
                            }
                            PinKind::ScanIn(b) => {
                                let _ = writeln!(out, "    si {b} {netname};");
                            }
                            PinKind::ScanOut(b) => {
                                let _ = writeln!(out, "    so {b} {netname};");
                            }
                            _ => {}
                        }
                    }
                    let _ = writeln!(out, "  }}");
                    let _ = id; // ids are not serialized; names are the identity
                }
                InstKind::Comb { model } => {
                    let _ = writeln!(
                        out,
                        "  inst {} comb {} ({} {}) {{",
                        inst.name,
                        self.comb_model(*model).name,
                        inst.loc.x,
                        inst.loc.y
                    );
                    for &p in &inst.pins {
                        let pin = self.pin(p);
                        let Some(net) = pin.net else { continue };
                        let netname = &self.net(net).name;
                        match pin.kind {
                            PinKind::GateIn(i) => {
                                let _ = writeln!(out, "    in {i} {netname};");
                            }
                            PinKind::GateOut => {
                                let _ = writeln!(out, "    out {netname};");
                            }
                            _ => {}
                        }
                    }
                    let _ = writeln!(out, "  }}");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbr_liberty::standard_library;

    const SAMPLE: &str = r#"
        design "demo" {
          die 0 0 400000 300000;
          comb_model NAND2 { inputs 2; area 0.8; cap 0.7; rdrive 4.0; tintr 18; size 400 600; }
          port CLK in (0 300) rdrive 1.0 net clk;
          port RST in (0 900) rdrive 1.0 net rst;
          port OUT out (399000 300) load 1.5 net y;
          inst r0 reg DFF_R_1X1 (10000 600) {
            clock clk; reset rst; skew 12.5;
            d 0 nd0; q 0 nq0;
          }
          inst r1 reg DFF_R_2X2 (20000 600) {
            clock clk; gate 3; reset rst; fixed;
            scan part 1 section 0 pos 4;
            d 0 nq0; q 0 nd0; d 1 nd1; q 1 y;
          }
          inst g0 comb NAND2 (12000 1200) { in 0 nq0; in 1 y; out nd1; }
        }
    "#;

    #[test]
    fn parses_sample_design() {
        let lib = standard_library();
        let d = Design::parse(SAMPLE, &lib).expect("valid design");
        assert_eq!(d.name(), "demo");
        assert_eq!(d.live_register_count(), 2);
        let r0 = d.inst_by_name("r0").unwrap();
        assert_eq!(d.register_width(r0), 1);
        let attrs = d.inst(r0).register_attrs().unwrap();
        assert_eq!(attrs.clock_offset, 12.5);
        let r1 = d.inst_by_name("r1").unwrap();
        let attrs = d.inst(r1).register_attrs().unwrap();
        assert!(attrs.fixed);
        assert_eq!(attrs.gate_group, 3);
        assert_eq!(
            attrs.scan,
            Some(ScanInfo {
                partition: 1,
                section: Some((0, 4))
            })
        );
        assert_eq!(d.register_width(r1), 2);
        // The NAND drives nd1 which feeds r1's D(1).
        let nd1 = d.net_by_name("nd1").unwrap();
        assert!(d.net_driver(nd1).is_some());
        assert_eq!(d.net_sinks(nd1).count(), 1);
    }

    #[test]
    fn round_trips_through_writer() {
        let lib = standard_library();
        let d = Design::parse(SAMPLE, &lib).expect("valid design");
        let text = d.to_design_text(&lib);
        let d2 = Design::parse(&text, &lib).expect("round trip");
        assert_eq!(d2.live_register_count(), d.live_register_count());
        assert_eq!(d2.live_inst_count(), d.live_inst_count());
        assert_eq!(d2.wirelength(), d.wirelength());
        let r1 = d2.inst_by_name("r1").unwrap();
        let attrs = d2.inst(r1).register_attrs().unwrap();
        assert!(attrs.fixed);
        assert_eq!(
            attrs.scan,
            Some(ScanInfo {
                partition: 1,
                section: Some((0, 4))
            })
        );
    }

    #[test]
    fn unknown_cell_is_an_error_with_location() {
        let lib = standard_library();
        let err = Design::parse(
            "design d { die 0 0 10 10;\n inst r reg NOPE (0 0) { clock c; } }",
            &lib,
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn missing_clock_is_an_error() {
        let lib = standard_library();
        let err = Design::parse(
            "design d { die 0 0 99000 99000; inst r reg DFF_1X1 (0 0) { d 0 n; } }",
            &lib,
        )
        .unwrap_err();
        assert!(err.message.contains("missing `clock`"), "{}", err.message);
    }

    #[test]
    fn duplicate_instance_is_an_error() {
        let lib = standard_library();
        let err = Design::parse(
            "design d { die 0 0 99000 99000;
             inst r reg DFF_1X1 (0 0) { clock c; }
             inst r reg DFF_1X1 (0 0) { clock c; } }",
            &lib,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
    }

    #[test]
    fn out_of_range_scan_partition_is_an_error() {
        let lib = standard_library();
        let err = Design::parse(
            "design d { die 0 0 99000 99000;\n inst r reg DFF_1X1 (0 0) { clock c; scan part 70000; } }",
            &lib,
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("scan partition"), "{}", err.message);
        assert!(err.message.contains("70000"), "{}", err.message);
    }

    #[test]
    fn out_of_range_gate_group_is_an_error() {
        let lib = standard_library();
        let err = Design::parse(
            "design d { die 0 0 99000 99000; inst r reg DFF_1X1 (0 0) { clock c; gate 5000000000; } }",
            &lib,
        )
        .unwrap_err();
        assert!(err.message.contains("gate group"), "{}", err.message);
    }

    #[test]
    fn out_of_range_bit_index_is_an_error() {
        let lib = standard_library();
        let err = Design::parse(
            "design d { die 0 0 99000 99000; inst r reg DFF_1X1 (0 0) { clock c; d 300 n; } }",
            &lib,
        )
        .unwrap_err();
        assert!(err.message.contains("bit index"), "{}", err.message);
    }

    #[test]
    fn integer_beyond_f64_precision_is_an_error() {
        let lib = standard_library();
        let err = Design::parse("design d { die 0 0 1e300 99000; }", &lib).unwrap_err();
        assert!(err.message.contains("expected integer"), "{}", err.message);
    }

    #[test]
    fn non_ascii_byte_is_reported_not_panicked() {
        let lib = standard_library();
        let err = Design::parse("design d { die 0 0 99000 99000; é }", &lib).unwrap_err();
        assert!(err.message.contains("non-ASCII"), "{}", err.message);
    }

    #[test]
    fn parsed_design_validates_cleanly_modulo_ports() {
        let lib = standard_library();
        let d = Design::parse(SAMPLE, &lib).expect("valid design");
        // nq0 in SAMPLE drives two sinks; nd0 has driver r1.Q(0) and sink
        // r0.D(0); everything has exactly one driver.
        let issues = d.validate();
        assert!(issues.is_empty(), "{issues:?}");
    }
}
