use mbr_geom::Dbu;

/// A combinational gate model: an n-input, single-output cell with a linear
/// delay model, the minimum the timing substrate needs to stitch realistic
/// register-to-register paths through logic clouds.
///
/// Delay through the gate is `intrinsic + drive_resistance × load` (ps), the
/// same linear model the register library uses.
#[derive(Clone, Debug, PartialEq)]
pub struct CombModel {
    /// Model name, e.g. `"NAND2"`.
    pub name: String,
    /// Number of input pins.
    pub inputs: u8,
    /// Cell area, µm².
    pub area: f64,
    /// Capacitance of each input pin, fF.
    pub input_cap: f64,
    /// Output drive resistance, kΩ.
    pub drive_resistance: f64,
    /// Intrinsic delay, ps.
    pub intrinsic_delay: f64,
    /// Footprint width in DBU.
    pub footprint_w: Dbu,
    /// Footprint height in DBU (one row).
    pub footprint_h: Dbu,
}

impl CombModel {
    /// A generic 2-input gate sized for the default 28 nm-class library.
    pub fn nand2() -> Self {
        CombModel {
            name: "NAND2".into(),
            inputs: 2,
            area: 0.8,
            input_cap: 0.7,
            drive_resistance: 4.0,
            intrinsic_delay: 18.0,
            footprint_w: 400,
            footprint_h: 600,
        }
    }

    /// A buffer/inverter-style single-input gate.
    pub fn buffer() -> Self {
        CombModel {
            name: "BUF".into(),
            inputs: 1,
            area: 0.5,
            input_cap: 0.6,
            drive_resistance: 2.5,
            intrinsic_delay: 14.0,
            footprint_w: 300,
            footprint_h: 600,
        }
    }

    /// Propagation delay in ps when driving `load` fF.
    pub fn delay(&self, load: f64) -> f64 {
        self.intrinsic_delay + self.drive_resistance * load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_linear() {
        let g = CombModel::nand2();
        assert_eq!(g.delay(0.0), g.intrinsic_delay);
        assert!(g.delay(5.0) > g.delay(1.0));
    }

    #[test]
    fn presets_have_expected_arity() {
        assert_eq!(CombModel::nand2().inputs, 2);
        assert_eq!(CombModel::buffer().inputs, 1);
    }
}
