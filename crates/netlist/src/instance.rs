use mbr_geom::{Dbu, Point};
use mbr_liberty::CellId;

use crate::{CombModelId, NetId, PinId};

/// Pin direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinDir {
    /// Signal flows into the instance.
    Input,
    /// Signal flows out of the instance.
    Output,
}

/// Functional role of a pin.
///
/// Register pins carry their bit index so that D/Q pairs stay associated
/// through rewiring; scan pins carry the bit index for per-bit scan cells
/// (`bit == 0` for shared internal-scan SI/SO).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinKind {
    /// Register data input, bit `n`.
    D(u8),
    /// Register data output, bit `n`.
    Q(u8),
    /// Register clock pin (shared across bits).
    Clock,
    /// Asynchronous reset.
    Reset,
    /// Asynchronous set.
    Set,
    /// Synchronous load enable.
    Enable,
    /// Scan input, bit `n` (0 for internal-scan cells).
    ScanIn(u8),
    /// Scan output, bit `n` (0 for internal-scan cells).
    ScanOut(u8),
    /// Scan enable (shared).
    ScanEnable,
    /// Combinational gate input `n`.
    GateIn(u8),
    /// Combinational gate output.
    GateOut,
    /// Port connection point.
    Port,
}

impl PinKind {
    /// Whether this is a register data pin, and its bit index.
    pub fn data_bit(self) -> Option<(bool, u8)> {
        match self {
            PinKind::D(b) => Some((true, b)),
            PinKind::Q(b) => Some((false, b)),
            _ => None,
        }
    }
}

/// A pin: owned by an instance, optionally connected to a net.
///
/// `offset` is the pin location relative to the instance's lower-left corner;
/// the Section 4.2 placement LP references all pin coordinates as
/// `cell_corner + offset`.
#[derive(Clone, Debug, PartialEq)]
pub struct Pin {
    /// Owning instance (arena index into [`crate::Design`]).
    pub inst: crate::InstId,
    /// Role of the pin.
    pub kind: PinKind,
    /// Direction.
    pub dir: PinDir,
    /// Offset from the instance lower-left corner, DBU.
    pub offset: Point,
    /// Input capacitance presented by the pin, fF (0 for outputs).
    pub cap: f64,
    /// Connected net, if any.
    pub net: Option<NetId>,
}

/// Direction of a port instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Primary input: drives its net.
    Input,
    /// Primary output: sinks its net.
    Output,
}

/// Scan-chain membership of a register (Section 2, scan compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScanInfo {
    /// Scan partition: registers may share a chain only within a partition.
    pub partition: u16,
    /// Ordered-section constraints, if the register sits in a section of the
    /// chain whose order must be preserved: `(section, position)`.
    pub section: Option<(u32, u32)>,
}

/// Register-specific attributes attached to a register instance.
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterAttrs {
    /// The clock net driving the CK pin.
    pub clock: NetId,
    /// Clock-gating group: registers are functionally compatible only when
    /// they share the same gating condition. `0` means ungated.
    pub gate_group: u32,
    /// Net driving the reset pin, when the class has one.
    pub reset: Option<NetId>,
    /// Net driving the set pin, when the class has one.
    pub set: Option<NetId>,
    /// Net driving the enable pin, when the class has one.
    pub enable: Option<NetId>,
    /// Net driving the scan-enable pin, when the class has one.
    pub scan_enable: Option<NetId>,
    /// Scan-chain membership, when the register is on a chain.
    pub scan: Option<ScanInfo>,
    /// Designer marked the register untouchable (Section 2: some registers
    /// are specified as fixed).
    pub fixed: bool,
    /// Designer allows resizing but not merging (size-only).
    pub size_only: bool,
    /// Useful-skew clock offset applied to this register's CK arrival, ps.
    pub clock_offset: f64,
}

impl RegisterAttrs {
    /// Minimal attributes: clocked by `clock`, ungated, no control nets, no
    /// scan, modifiable.
    pub fn clocked(clock: NetId) -> Self {
        RegisterAttrs {
            clock,
            gate_group: 0,
            reset: None,
            set: None,
            enable: None,
            scan_enable: None,
            scan: None,
            fixed: false,
            size_only: false,
            clock_offset: 0.0,
        }
    }

    /// Whether the designer forbids merging this register (Section 2 lists
    /// fixed and size-only registers as non-composable).
    pub fn is_untouchable(&self) -> bool {
        self.fixed || self.size_only
    }
}

/// What an instance is.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// A register (width ≥ 1) instantiating a library cell.
    Register {
        /// The library cell implementing the register.
        cell: CellId,
        /// Register attributes (clock, control nets, scan, constraints).
        attrs: RegisterAttrs,
        /// Number of *connected* bits: an incomplete MBR has fewer connected
        /// bits than the cell width (Section 3's incomplete-MBR option).
        connected_bits: u8,
    },
    /// A combinational gate instantiating a [`crate::CombModel`].
    Comb {
        /// The gate model.
        model: CombModelId,
    },
    /// A primary input or output of the design.
    Port {
        /// Input or output.
        dir: PortDir,
        /// For inputs: source drive resistance, kΩ. For outputs: unused.
        drive_resistance: f64,
        /// For outputs: external load, fF. For inputs: unused.
        load: f64,
    },
}

/// An instance in the design: a register, combinational gate, or port.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// Design-unique name.
    pub name: String,
    /// Role and role-specific payload.
    pub kind: InstKind,
    /// Lower-left corner placement, DBU.
    pub loc: Point,
    /// Footprint width, DBU (0 for ports).
    pub width: Dbu,
    /// Footprint height, DBU (0 for ports).
    pub height: Dbu,
    /// Pins owned by this instance.
    pub pins: Vec<PinId>,
    /// Soft-deletion flag: merged-away registers stay in the arena as
    /// tombstones so ids remain stable.
    pub alive: bool,
}

impl Instance {
    /// Whether this is a live register.
    pub fn is_register(&self) -> bool {
        self.alive && matches!(self.kind, InstKind::Register { .. })
    }

    /// Register attributes, if this is a register (dead or alive).
    pub fn register_attrs(&self) -> Option<&RegisterAttrs> {
        match &self.kind {
            InstKind::Register { attrs, .. } => Some(attrs),
            _ => None,
        }
    }

    /// Mutable register attributes, if this is a register.
    pub fn register_attrs_mut(&mut self) -> Option<&mut RegisterAttrs> {
        match &mut self.kind {
            InstKind::Register { attrs, .. } => Some(attrs),
            _ => None,
        }
    }

    /// The library cell, if this is a register.
    pub fn register_cell(&self) -> Option<CellId> {
        match &self.kind {
            InstKind::Register { cell, .. } => Some(*cell),
            _ => None,
        }
    }

    /// Footprint rectangle at the current placement.
    pub fn rect(&self) -> mbr_geom::Rect {
        mbr_geom::Rect::from_origin_size(self.loc, self.width, self.height)
    }

    /// Center of the footprint — the blocking-register test point of
    /// Section 3.2.
    pub fn center(&self) -> Point {
        self.rect().center()
    }
}

/// The D/Q (and optional per-bit scan) pins of one register bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BitPins {
    /// Bit index within the register.
    pub bit: u8,
    /// Data input pin.
    pub d: PinId,
    /// Data output pin.
    pub q: PinId,
}
