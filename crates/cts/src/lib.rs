#![warn(missing_docs)]
//! Clock-tree synthesis estimation and useful-skew assignment.
//!
//! The headline benefit of MBR composition is a lighter clock tree: fewer
//! sinks mean less clock wire, fewer and smaller buffers, and less switching
//! capacitance (Table 1's "Clk Bufs" and "Clk Cap" columns). This crate
//! provides:
//!
//! * [`synthesize_clock_tree`] — a recursive geometric-clustering clock tree
//!   over every clock net: sinks are grouped bottom-up into buffered
//!   clusters under fanout and load limits, cluster taps are clustered
//!   recursively up to the root, and wire/pin/buffer capacitance is
//!   accounted per level ([`CtsReport`]),
//! * [`assign_useful_skew`] — Fishburn-style per-register clock offsets
//!   within the [`mbr_sta::SkewWindow`]: each register's offset is moved to
//!   balance its D- and Q-side worst slacks, which is exactly the "useful
//!   skew applied to the new MBRs, benefiting from their timing compatible
//!   smaller counterparts" step of the paper's Fig. 4 flow.
//!
//! This is an *estimator*, not a signoff CTS: it preserves the monotone
//! relationships the experiments measure (sink count/placement → tree cap
//! and buffer count) without modifying the netlist.
//!
//! # Examples
//!
//! ```
//! use mbr_geom::{Point, Rect};
//! use mbr_liberty::standard_library;
//! use mbr_netlist::{Design, RegisterAttrs};
//! use mbr_cts::{synthesize_clock_tree, CtsConfig};
//!
//! let lib = standard_library();
//! let mut d = Design::new("t", Rect::new(Point::new(0, 0), Point::new(90_000, 90_000)));
//! let clk = d.add_net("clk");
//! let cell = lib.cell_by_name("DFF_1X1").expect("flop");
//! for i in 0..40i64 {
//!     d.add_register(
//!         format!("r{i}"), &lib, cell,
//!         Point::new((i % 8) * 10_000, (i / 8) * 10_000),
//!         RegisterAttrs::clocked(clk),
//!     );
//! }
//! let report = synthesize_clock_tree(&d, &CtsConfig::default());
//! assert_eq!(report.sinks, 40);
//! assert!(report.buffers >= 2);
//! assert!(report.total_cap_ff > 0.0);
//! ```

use mbr_geom::{Dbu, Point};
use mbr_liberty::Library;
use mbr_netlist::{Design, InstId, PinKind};
use mbr_obs::{self as obs, Counter, Gauge, Histogram, HistogramData};
use mbr_sta::Sta;

/// Clock-tree estimation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CtsConfig {
    /// Maximum sinks a single buffer may drive.
    pub max_fanout: usize,
    /// Maximum capacitive load per buffer, fF.
    pub max_load_ff: f64,
    /// Input capacitance of a clock buffer, fF.
    pub buffer_input_cap: f64,
    /// Clock-wire capacitance per DBU, fF (clock routing is wider/shielded,
    /// so this is higher than signal wire).
    pub wire_cap_per_dbu: f64,
    /// Top-level distribution (trunk/spine) length as a multiple of the die
    /// half-perimeter. The trunk exists regardless of sink count — it is why
    /// the paper's relative clock-cap savings are single-digit percentages
    /// even when leaf sinks drop by a third. Set to 0 to disable.
    pub trunk_factor: f64,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            max_fanout: 24,
            max_load_ff: 60.0,
            buffer_input_cap: 1.4,
            wire_cap_per_dbu: 3e-4,
            trunk_factor: 2.0,
        }
    }
}

/// Supply/clocking assumptions for dynamic-power estimates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Supply voltage, V.
    pub vdd: f64,
    /// Clock frequency, GHz (1/period when driven from the delay model).
    pub freq_ghz: f64,
    /// Average clock activity (1.0 for a free-running clock; lower when
    /// gating keeps regions idle).
    pub activity: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            vdd: 0.9,
            freq_ghz: 1.0,
            activity: 1.0,
        }
    }
}

impl CtsReport {
    /// Dynamic power switched by the clock tree, µW: `α·f·C·V²` over the
    /// total tree capacitance. The clock toggles twice per cycle, but the
    /// conventional `f·C·V²` form (not `½·f·C·V²`) already accounts for the
    /// two edges.
    ///
    /// This is the quantity the paper optimizes — "clock power can
    /// contribute 20 % to 40 % of the dynamic power" — with tree
    /// capacitance as its handle.
    pub fn clock_power_uw(&self, power: &PowerModel) -> f64 {
        // GHz × fF × V² = 1e9 × 1e-15 W = µW directly.
        power.activity * power.freq_ghz * self.total_cap_ff * power.vdd * power.vdd
    }
}

/// Clock-tree metrics over all clock nets of a design.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CtsReport {
    /// Clock sinks (register clock pins) served.
    pub sinks: usize,
    /// Buffers inserted.
    pub buffers: usize,
    /// Tree levels of the deepest clock net.
    pub levels: usize,
    /// Total clock wire length, DBU.
    pub wirelength_dbu: Dbu,
    /// Clock wire capacitance, fF.
    pub wire_cap_ff: f64,
    /// Sink (register clock pin) capacitance, fF.
    pub sink_cap_ff: f64,
    /// Buffer input capacitance, fF.
    pub buffer_cap_ff: f64,
    /// Total switched clock capacitance, fF.
    pub total_cap_ff: f64,
}

/// Builds the estimated clock tree for every clock net in `design` and
/// returns the aggregate capacitance/buffer metrics.
///
/// Sinks are the register clock pins of each clock net. Each net with at
/// least one sink contributes at least one (root) buffer. Equivalent to
/// summing [`CtsReport::from_tree`] over [`build_clock_trees`].
pub fn synthesize_clock_tree(design: &Design, config: &CtsConfig) -> CtsReport {
    let mut report = CtsReport::default();
    for tree in build_clock_trees(design, config) {
        report.accumulate(&CtsReport::from_tree(&tree, config));
    }
    report
}

/// What a clock-tree node is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TreeNodeKind {
    /// A register clock pin with its input capacitance, fF.
    Sink {
        /// Pin capacitance, fF.
        cap: f64,
    },
    /// An inserted clock buffer.
    Buffer,
}

/// One node of a built [`ClockTree`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeNode {
    /// Node position, DBU.
    pub pos: Point,
    /// Sink or buffer.
    pub kind: TreeNodeKind,
    /// Parent node index; `None` only for the root buffer.
    pub parent: Option<usize>,
}

/// The explicit topology of one clock net's estimated tree.
#[derive(Clone, Debug, PartialEq)]
pub struct ClockTree {
    /// Name of the clock net this tree distributes.
    pub net_name: String,
    /// All nodes; sinks first, then buffers level by level.
    pub nodes: Vec<TreeNode>,
    /// Index of the root buffer.
    pub root: usize,
    /// Trunk wirelength from the clock source to the root, DBU.
    pub trunk_dbu: Dbu,
}

impl ClockTree {
    /// Tree depth: buffer levels between root and sinks (≥ 1).
    pub fn levels(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, TreeNodeKind::Sink { .. }))
            .map(|n| {
                let mut depth = 0;
                let mut cur = n.parent;
                while let Some(p) = cur {
                    depth += 1;
                    cur = self.nodes[p].parent;
                }
                depth
            })
            .max()
            .unwrap_or(0)
    }

    /// Sink count.
    pub fn sink_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, TreeNodeKind::Sink { .. }))
            .count()
    }

    /// Buffer count.
    pub fn buffer_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == TreeNodeKind::Buffer)
            .count()
    }

    /// Graphviz DOT rendering of the tree (buffers as boxes, sinks as
    /// points), for visual inspection of the clustering.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.net_name);
        for (i, node) in self.nodes.iter().enumerate() {
            match node.kind {
                TreeNodeKind::Buffer => {
                    let _ = writeln!(out, "  n{i} [shape=box, label=\"buf@{}\"];", node.pos);
                }
                TreeNodeKind::Sink { .. } => {
                    let _ = writeln!(out, "  n{i} [shape=point];");
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

impl CtsReport {
    /// Metrics of one tree under a config.
    pub fn from_tree(tree: &ClockTree, config: &CtsConfig) -> CtsReport {
        let mut report = CtsReport {
            sinks: tree.sink_count(),
            buffers: tree.buffer_count(),
            levels: tree.levels(),
            ..CtsReport::default()
        };
        for node in &tree.nodes {
            if let TreeNodeKind::Sink { cap } = node.kind {
                report.sink_cap_ff += cap;
            } else {
                report.buffer_cap_ff += config.buffer_input_cap;
            }
            if let Some(p) = node.parent {
                report.wirelength_dbu += node.pos.manhattan(tree.nodes[p].pos);
            }
        }
        report.wirelength_dbu += tree.trunk_dbu;
        report.wire_cap_ff = config.wire_cap_per_dbu * report.wirelength_dbu as f64;
        report.total_cap_ff = report.wire_cap_ff + report.sink_cap_ff + report.buffer_cap_ff;
        report
    }

    fn accumulate(&mut self, other: &CtsReport) {
        self.sinks += other.sinks;
        self.buffers += other.buffers;
        self.levels = self.levels.max(other.levels);
        self.wirelength_dbu += other.wirelength_dbu;
        self.wire_cap_ff += other.wire_cap_ff;
        self.sink_cap_ff += other.sink_cap_ff;
        self.buffer_cap_ff += other.buffer_cap_ff;
        self.total_cap_ff = self.wire_cap_ff + self.sink_cap_ff + self.buffer_cap_ff;
    }
}

/// Builds the explicit clock-tree topology of every clock net (one
/// [`ClockTree`] per net with sinks).
pub fn build_clock_trees(design: &Design, config: &CtsConfig) -> Vec<ClockTree> {
    let mut trees = Vec::new();
    for (net, net_data) in design.live_nets() {
        if !design.is_clock_net(net) {
            continue;
        }
        let sinks: Vec<(Point, f64)> = net_data
            .pins
            .iter()
            .filter(|&&p| design.pin(p).kind == PinKind::Clock)
            .map(|&p| (design.pin_position(p), design.pin(p).cap))
            .collect();
        if sinks.is_empty() {
            continue;
        }
        let mut nodes: Vec<TreeNode> = sinks
            .iter()
            .map(|&(pos, cap)| TreeNode {
                pos,
                kind: TreeNodeKind::Sink { cap },
                parent: None,
            })
            .collect();

        // Bottom level clusters the sinks; upper levels cluster buffer taps
        // until one root remains.
        let mut level: Vec<usize> = (0..nodes.len()).collect();
        loop {
            let items: Vec<(Point, f64, usize)> = level
                .iter()
                .map(|&i| {
                    let cap = match nodes[i].kind {
                        TreeNodeKind::Sink { cap } => cap,
                        TreeNodeKind::Buffer => config.buffer_input_cap,
                    };
                    (nodes[i].pos, cap, i)
                })
                .collect();
            let next = cluster_level(&items, config, &mut nodes);
            if next.len() <= 1 {
                level = next;
                break;
            }
            level = next;
        }
        let root = level.first().copied().unwrap_or(0);
        let die = design.die();
        let trunk = ((die.width() + die.height()) as f64 * config.trunk_factor) as Dbu;
        trees.push(ClockTree {
            net_name: design.net(net).name.clone(),
            nodes,
            root,
            trunk_dbu: trunk,
        });
    }
    trees
}

/// Splits `items` (position, cap, node index) into clusters satisfying the
/// fanout/load limits via recursive median bisection, appends one buffer
/// node per cluster at its centroid, links the children, and returns the new
/// buffer node indices.
fn cluster_level(
    items: &[(Point, f64, usize)],
    config: &CtsConfig,
    nodes: &mut Vec<TreeNode>,
) -> Vec<usize> {
    let mut taps = Vec::new();
    let mut stack = vec![items.to_vec()];
    while let Some(group) = stack.pop() {
        let cap: f64 = group.iter().map(|&(_, c, _)| c).sum();
        if group.len() > config.max_fanout || (cap > config.max_load_ff && group.len() > 1) {
            // Split along the wider axis at the median.
            let (min_x, max_x) = minmax(group.iter().map(|&(p, _, _)| p.x));
            let (min_y, max_y) = minmax(group.iter().map(|&(p, _, _)| p.y));
            let mut sorted = group;
            if max_x - min_x >= max_y - min_y {
                sorted.sort_by_key(|&(p, _, _)| (p.x, p.y));
            } else {
                sorted.sort_by_key(|&(p, _, _)| (p.y, p.x));
            }
            let mid = sorted.len() / 2;
            let tail = sorted.split_off(mid);
            stack.push(sorted);
            stack.push(tail);
            continue;
        }
        // Buffered cluster at the centroid of its children.
        let centroid = centroid(&group);
        let buffer_idx = nodes.len();
        nodes.push(TreeNode {
            pos: centroid,
            kind: TreeNodeKind::Buffer,
            parent: None,
        });
        for &(_, _, child) in &group {
            nodes[child].parent = Some(buffer_idx);
        }
        taps.push(buffer_idx);
    }
    taps
}

fn centroid(points: &[(Point, f64, usize)]) -> Point {
    debug_assert!(!points.is_empty());
    let n = points.len() as i64;
    let sx: i64 = points.iter().map(|&(p, _, _)| p.x).sum();
    let sy: i64 = points.iter().map(|&(p, _, _)| p.y).sum();
    Point::new(sx / n, sy / n)
}

fn minmax(iter: impl Iterator<Item = i64>) -> (i64, i64) {
    iter.fold((i64::MAX, i64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

/// Useful-skew assignment parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewConfig {
    /// Largest clock offset magnitude the clock network may realize, ps.
    pub max_abs_skew: f64,
    /// Balance passes (register windows interact through shared paths).
    pub passes: usize,
    /// Offsets below this threshold are not worth a clock-tree detour, ps.
    pub min_useful: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            max_abs_skew: 200.0,
            passes: 3,
            min_useful: 1.0,
        }
    }
}

/// Outcome of [`assign_useful_skew`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SkewReport {
    /// Registers whose clock offset changed.
    pub adjusted: usize,
    /// WNS before assignment, ps.
    pub wns_before: f64,
    /// WNS after assignment, ps.
    pub wns_after: f64,
    /// TNS before assignment, ps.
    pub tns_before: f64,
    /// TNS after assignment, ps.
    pub tns_after: f64,
}

/// One cached per-sink balancing decision, keyed by the full set of inputs
/// that determine it: the sink's name, its clock offset entering the step,
/// and its D-/Q-side slacks at the step (all `f64`s as raw bits — replay
/// validation is exact-bit, never tolerance-based).
#[derive(Clone, Debug, PartialEq, Eq)]
struct SinkRecord {
    name: String,
    pre_offset: u64,
    d_slack: Option<u64>,
    q_slack: Option<u64>,
    /// `Some(bits)` if the step applied this new offset, `None` if it left
    /// the sink alone (one-sided, or below `min_useful`).
    applied: Option<u64>,
}

/// Cross-pass memo of [`assign_useful_skew`] decisions, enabling
/// validated replay in session mode: a sink whose inputs (offset and both
/// slacks) are bit-identical to the cached pass takes the cached decision
/// without recomputing it, and counts into `cts.skew.sinks_skipped`.
///
/// Because each record is validated against the *actual* current state
/// before being trusted, replay is sound on any pass — including ones
/// following structural rebuilds — and the assigned offsets, the
/// [`SkewReport`], and the skew histogram stay byte-identical to a
/// replay-free run.
#[derive(Clone, Debug, Default)]
pub struct SkewReplay {
    /// One record vector per executed balance pass, indexed positionally
    /// by the register's position in the `regs` slice.
    passes: Vec<Vec<SinkRecord>>,
    config: Option<SkewConfig>,
    primed: bool,
}

/// Assigns per-register useful-skew clock offsets to the given registers,
/// balancing each register's worst D-side and Q-side slacks (the optimal
/// single-register choice: the offset that maximizes `min(slack_D + δ,
/// slack_Q − δ)` is `δ* = (slack_Q − slack_D) / 2`).
///
/// Runs `config.passes` sweeps with incremental timing updates between
/// registers, clamping offsets to `±config.max_abs_skew`, and only moves a
/// register when the change exceeds `config.min_useful`. Never worsens TNS:
/// a pass-level rollback restores the previous offsets if TNS degrades.
pub fn assign_useful_skew(
    design: &mut Design,
    lib: &Library,
    sta: &mut Sta,
    regs: &[InstId],
    config: &SkewConfig,
) -> SkewReport {
    assign_useful_skew_with_replay(design, lib, sta, regs, config, None)
}

/// [`assign_useful_skew`] with an optional cross-pass [`SkewReplay`] cache.
/// Sinks whose cached decision validates bit-exactly against the current
/// state skip the balance computation; `cts.skew.adjusted` then counts only
/// the genuinely recomputed adjustments while the returned report still
/// describes the full (identical) outcome.
pub fn assign_useful_skew_with_replay(
    design: &mut Design,
    lib: &Library,
    sta: &mut Sta,
    regs: &[InstId],
    config: &SkewConfig,
    mut replay: Option<&mut SkewReplay>,
) -> SkewReport {
    let mut report = SkewReport {
        wns_before: sta.report().wns,
        tns_before: sta.report().tns,
        ..SkewReport::default()
    };

    let cached: Vec<Vec<SinkRecord>> = match replay.as_deref_mut() {
        Some(r) if r.primed && r.config == Some(*config) => std::mem::take(&mut r.passes),
        _ => Vec::new(),
    };
    // Name-keyed per-pass lookup: a record validates by its *inputs* alone,
    // so a sink may hit even when the register list shifted positionally
    // (MBRs added/removed between passes).
    let cached_by_name: Vec<std::collections::BTreeMap<&str, &SinkRecord>> = cached
        .iter()
        .map(|p| p.iter().map(|r| (r.name.as_str(), r)).collect())
        .collect();
    let mut fresh: Vec<Vec<SinkRecord>> = Vec::new();
    let mut sinks_replayed = 0u64;

    let mut adjusted = std::collections::BTreeSet::new();
    // Registers with at least one genuinely *computed* applied decision —
    // in a replay-free run this equals `adjusted`, so the observability
    // counter stays batch-identical; under replay it is strictly smaller
    // whenever any applying step was replayed.
    let mut computed = std::collections::BTreeSet::new();
    for pass in 0..config.passes {
        let snapshot: Vec<(InstId, f64)> = regs
            .iter()
            .map(|&r| {
                (
                    r,
                    design
                        .inst(r)
                        .register_attrs()
                        .expect("register")
                        .clock_offset,
                )
            })
            .collect();
        let tns_at_pass_start = sta.report().tns;

        let mut records: Vec<SinkRecord> = Vec::with_capacity(regs.len());
        let mut pass_changed = false;
        for &r in regs {
            let d_slack = sta.report().register_d_slack(design, r);
            let q_slack = sta.report().register_q_slack(design, r);
            let pre_offset = design
                .inst(r)
                .register_attrs()
                .expect("register")
                .clock_offset;
            let name = &design.inst(r).name;
            let d_bits = d_slack.map(f64::to_bits);
            let q_bits = q_slack.map(f64::to_bits);
            let rec = cached_by_name
                .get(pass)
                .and_then(|m| m.get(name.as_str()))
                .copied()
                .filter(|rec| {
                    rec.pre_offset == pre_offset.to_bits()
                        && rec.d_slack == d_bits
                        && rec.q_slack == q_bits
                });
            let decision = if let Some(rec) = rec {
                // Bit-exact inputs: the balance step is a pure function of
                // them, so the cached decision is the computed one.
                sinks_replayed += 1;
                rec.applied.map(f64::from_bits)
            } else {
                let computed_decision = match (d_slack, q_slack) {
                    (Some(sd), Some(sq)) => {
                        // Balance point, as an *increment* over the current
                        // offset.
                        let delta = (sq - sd) / 2.0;
                        let new_offset =
                            (pre_offset + delta).clamp(-config.max_abs_skew, config.max_abs_skew);
                        if (new_offset - pre_offset).abs() < config.min_useful {
                            None
                        } else {
                            Some(new_offset)
                        }
                    }
                    // One-sided registers gain nothing from skew.
                    _ => None,
                };
                if computed_decision.is_some() {
                    computed.insert(r);
                }
                computed_decision
            };
            records.push(SinkRecord {
                name: name.clone(),
                pre_offset: pre_offset.to_bits(),
                d_slack: d_bits,
                q_slack: q_bits,
                applied: decision.map(f64::to_bits),
            });
            let Some(new_offset) = decision else {
                continue;
            };
            design
                .inst_mut(r)
                .register_attrs_mut()
                .expect("register")
                .clock_offset = new_offset;
            sta.update_after_change(design, lib, &[r]);
            adjusted.insert(r);
            pass_changed = true;
        }
        fresh.push(records);

        if sta.report().tns < tns_at_pass_start - 1e-9 {
            // The pass hurt: roll back its offsets.
            for (r, offset) in snapshot {
                design
                    .inst_mut(r)
                    .register_attrs_mut()
                    .expect("register")
                    .clock_offset = offset;
            }
            let all: Vec<InstId> = regs.to_vec();
            sta.update_after_change(design, lib, &all);
            break;
        }
        if !pass_changed {
            break;
        }
    }

    if let Some(r) = replay {
        r.passes = fresh;
        r.config = Some(*config);
        r.primed = true;
    }
    report.adjusted = adjusted.len();
    report.wns_after = sta.report().wns;
    report.tns_after = sta.report().tns;
    // The *work* counter: adjustments this run actually computed. Replayed
    // adjustments land in `cts.skew.sinks_skipped` instead, so an
    // incremental run's counters prove it did strictly less balancing work
    // than batch while the report above stays outcome-identical.
    obs::counter(Counter::SkewAdjusted, computed.len() as u64);
    obs::counter(Counter::SkewSinksSkipped, sinks_replayed);
    obs::gauge(Gauge::WnsPs, report.wns_after);
    obs::gauge(Gauge::TnsPs, report.tns_after);
    // Final |offset| magnitudes (rounded to whole ps) of every touched
    // register — after any rollback, so the distribution matches what the
    // clock network must actually realize.
    let mut magnitudes = HistogramData::new();
    for &r in &adjusted {
        if let Some(attrs) = design.inst(r).register_attrs() {
            magnitudes.record(attrs.clock_offset.abs().round() as u64);
        }
    }
    obs::histogram(Histogram::SkewAbsAdjustPs, &magnitudes);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbr_geom::Rect;
    use mbr_liberty::standard_library;
    use mbr_netlist::RegisterAttrs;
    use mbr_sta::DelayModel;

    fn die() -> Rect {
        Rect::new(Point::new(0, 0), Point::new(400_000, 400_000))
    }

    fn spread_design(n: i64) -> (Design, Vec<InstId>) {
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        let cols = (n as f64).sqrt().ceil() as i64;
        let regs = (0..n)
            .map(|i| {
                d.add_register(
                    format!("r{i}"),
                    &lib,
                    cell,
                    Point::new((i % cols) * 8_000, (i / cols) * 8_000),
                    RegisterAttrs::clocked(clk),
                )
            })
            .collect();
        (d, regs)
    }

    #[test]
    fn fewer_sinks_means_lighter_tree() {
        let cfg = CtsConfig::default();
        let (d_many, _) = spread_design(200);
        let (d_few, _) = spread_design(60);
        let many = synthesize_clock_tree(&d_many, &cfg);
        let few = synthesize_clock_tree(&d_few, &cfg);
        assert!(few.buffers < many.buffers);
        assert!(few.total_cap_ff < many.total_cap_ff);
        assert!(few.wirelength_dbu < many.wirelength_dbu);
        assert_eq!(many.sinks, 200);
    }

    #[test]
    fn single_sink_gets_one_buffer() {
        let (d, _) = spread_design(1);
        let r = synthesize_clock_tree(&d, &CtsConfig::default());
        assert_eq!(r.sinks, 1);
        assert_eq!(r.buffers, 1);
        assert_eq!(r.levels, 1);
    }

    #[test]
    fn no_clock_nets_no_tree() {
        let d = Design::new("t", die());
        let r = synthesize_clock_tree(&d, &CtsConfig::default());
        assert_eq!(r, CtsReport::default());
    }

    #[test]
    fn fanout_limit_is_respected() {
        let cfg = CtsConfig {
            max_fanout: 8,
            ..CtsConfig::default()
        };
        let (d, _) = spread_design(100);
        let r = synthesize_clock_tree(&d, &cfg);
        // 100 sinks with fanout 8 need at least 13 leaf buffers.
        assert!(r.buffers >= 13, "buffers = {}", r.buffers);
        assert!(r.levels >= 2);
    }

    #[test]
    fn total_cap_is_the_sum_of_parts() {
        let (d, _) = spread_design(50);
        let r = synthesize_clock_tree(&d, &CtsConfig::default());
        assert!((r.total_cap_ff - (r.wire_cap_ff + r.sink_cap_ff + r.buffer_cap_ff)).abs() < 1e-9);
        // MBR library sink caps: 50 flops at 0.9 fF.
        assert!((r.sink_cap_ff - 45.0).abs() < 1e-6);
    }

    #[test]
    fn useful_skew_recovers_an_unbalanced_pipeline() {
        // r0 --long wire--> r1 --short wire--> r2: r1's D side is much
        // tighter than its Q side, so positive skew on r1 helps.
        let lib = standard_library();
        let mut d = Design::new("t", die());
        let clk = d.add_net("clk");
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        let r0 = d.add_register(
            "r0",
            &lib,
            cell,
            Point::new(0, 0),
            RegisterAttrs::clocked(clk),
        );
        let r1 = d.add_register(
            "r1",
            &lib,
            cell,
            Point::new(330_000, 0),
            RegisterAttrs::clocked(clk),
        );
        let r2 = d.add_register(
            "r2",
            &lib,
            cell,
            Point::new(340_000, 0),
            RegisterAttrs::clocked(clk),
        );
        for (a, b, n) in [(r0, r1, "n0"), (r1, r2, "n1")] {
            let net = d.add_net(n);
            d.connect(d.find_pin(a, PinKind::Q(0)).unwrap(), net);
            d.connect(d.find_pin(b, PinKind::D(0)).unwrap(), net);
        }
        // Pick a period that makes the long hop fail.
        let model = DelayModel {
            clock_period: 400.0,
            ..DelayModel::default()
        };
        let mut sta = Sta::new(&d, &lib, model).unwrap();
        let before = sta.report().tns;
        assert!(before < 0.0, "fixture must start violated, tns = {before}");

        let report = assign_useful_skew(
            &mut d,
            &lib,
            &mut sta,
            &[r0, r1, r2],
            &SkewConfig::default(),
        );
        assert!(report.adjusted >= 1);
        assert!(
            report.tns_after > report.tns_before,
            "skew must recover slack: {} -> {}",
            report.tns_before,
            report.tns_after
        );
        // r1 got a positive offset (capture later).
        let off = d.inst(r1).register_attrs().unwrap().clock_offset;
        assert!(off > 0.0, "expected positive skew, got {off}");
        // Oracle: full re-analysis agrees with the incremental state.
        let full = Sta::new(&d, &lib, model).unwrap();
        assert!((full.report().tns - sta.report().tns).abs() < 1e-9);
    }

    #[test]
    fn useful_skew_leaves_met_designs_mostly_alone() {
        let lib = standard_library();
        let (mut d, regs) = {
            let mut d = Design::new("t", die());
            let clk = d.add_net("clk");
            let cell = lib.cell_by_name("DFF_1X1").unwrap();
            let r0 = d.add_register(
                "a",
                &lib,
                cell,
                Point::new(0, 0),
                RegisterAttrs::clocked(clk),
            );
            let r1 = d.add_register(
                "b",
                &lib,
                cell,
                Point::new(10_000, 0),
                RegisterAttrs::clocked(clk),
            );
            let net = d.add_net("n");
            d.connect(d.find_pin(r0, PinKind::Q(0)).unwrap(), net);
            d.connect(d.find_pin(r1, PinKind::D(0)).unwrap(), net);
            (d, vec![r0, r1])
        };
        let model = DelayModel::default();
        let mut sta = Sta::new(&d, &lib, model).unwrap();
        assert_eq!(sta.report().failing_endpoints, 0);
        let report = assign_useful_skew(&mut d, &lib, &mut sta, &regs, &SkewConfig::default());
        assert_eq!(report.tns_after, 0.0);
        assert!(
            sta.report().failing_endpoints == 0,
            "must not create violations"
        );
    }
}

#[cfg(test)]
mod tree_tests {
    use super::*;
    use mbr_geom::Rect;
    use mbr_liberty::standard_library;
    use mbr_netlist::{Design, RegisterAttrs};

    fn spread(n: i64) -> Design {
        let lib = standard_library();
        let mut d = Design::new(
            "t",
            Rect::new(Point::new(0, 0), Point::new(400_000, 400_000)),
        );
        let clk = d.add_net("clk");
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        let cols = (n as f64).sqrt().ceil() as i64;
        for i in 0..n {
            d.add_register(
                format!("r{i}"),
                &lib,
                cell,
                Point::new((i % cols) * 8_000, (i / cols) * 8_000),
                RegisterAttrs::clocked(clk),
            );
        }
        d
    }

    #[test]
    fn every_node_reaches_the_root() {
        let d = spread(100);
        let trees = build_clock_trees(&d, &CtsConfig::default());
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.net_name, "clk");
        assert!(tree.nodes[tree.root].parent.is_none());
        for (i, _) in tree.nodes.iter().enumerate() {
            let mut cur = i;
            let mut hops = 0;
            while let Some(p) = tree.nodes[cur].parent {
                cur = p;
                hops += 1;
                assert!(hops <= tree.nodes.len(), "cycle in tree");
            }
            assert_eq!(cur, tree.root, "node {i} must reach the root");
        }
        assert_eq!(tree.sink_count(), 100);
    }

    #[test]
    fn report_derives_exactly_from_the_tree() {
        let d = spread(60);
        let cfg = CtsConfig::default();
        let summed = synthesize_clock_tree(&d, &cfg);
        let trees = build_clock_trees(&d, &cfg);
        let from_tree = CtsReport::from_tree(&trees[0], &cfg);
        assert_eq!(summed, from_tree, "one net: report equals tree metrics");
    }

    #[test]
    fn dot_export_mentions_every_buffer() {
        let d = spread(30);
        let trees = build_clock_trees(&d, &CtsConfig::default());
        let dot = trees[0].to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("shape=box").count(), trees[0].buffer_count());
        assert_eq!(dot.matches("shape=point").count(), trees[0].sink_count());
        // One edge per non-root node.
        assert_eq!(dot.matches(" -> ").count(), trees[0].nodes.len() - 1);
    }

    #[test]
    fn two_clock_domains_build_two_trees() {
        let lib = standard_library();
        let mut d = Design::new(
            "t",
            Rect::new(Point::new(0, 0), Point::new(200_000, 200_000)),
        );
        let clk_a = d.add_net("clk_a");
        let clk_b = d.add_net("clk_b");
        let cell = lib.cell_by_name("DFF_1X1").unwrap();
        for i in 0..6i64 {
            let clk = if i % 2 == 0 { clk_a } else { clk_b };
            d.add_register(
                format!("r{i}"),
                &lib,
                cell,
                Point::new(i * 5_000, 600),
                RegisterAttrs::clocked(clk),
            );
        }
        let trees = build_clock_trees(&d, &CtsConfig::default());
        assert_eq!(trees.len(), 2);
        let names: Vec<&str> = trees.iter().map(|t| t.net_name.as_str()).collect();
        assert!(names.contains(&"clk_a") && names.contains(&"clk_b"));
        assert!(trees.iter().all(|t| t.sink_count() == 3));
        let report = synthesize_clock_tree(&d, &CtsConfig::default());
        assert_eq!(report.sinks, 6);
        assert!(report.buffers >= 2);
    }
}

#[cfg(test)]
mod power_tests {
    use super::*;

    #[test]
    fn clock_power_scales_with_cap_frequency_and_vdd() {
        let report = CtsReport {
            total_cap_ff: 1000.0, // 1 pF
            ..CtsReport::default()
        };
        let base = PowerModel::default();
        // 1 pF toggling at 1 GHz from 0.9 V: f·C·V² = 1e9 · 1e-12 · 0.81 W
        // = 0.81 mW = 810 µW.
        let p = report.clock_power_uw(&base);
        assert!((p - 810.0).abs() < 1e-9, "1 pF at 1 GHz, 0.9 V: {p} uW");
        // Doubling frequency doubles power; halving activity halves it.
        let fast = PowerModel {
            freq_ghz: 2.0,
            ..base
        };
        assert!((report.clock_power_uw(&fast) - 2.0 * p).abs() < 1e-12);
        let gated = PowerModel {
            activity: 0.5,
            ..base
        };
        assert!((report.clock_power_uw(&gated) - 0.5 * p).abs() < 1e-12);
    }
}
