//! Property tests for the clock-tree builder: structural invariants over
//! arbitrary sink placements.

use mbr_cts::{build_clock_trees, synthesize_clock_tree, CtsConfig, TreeNodeKind};
use mbr_geom::{Point, Rect};
use mbr_liberty::standard_library;
use mbr_netlist::{Design, RegisterAttrs};
use mbr_test::check::vec_of;
use mbr_test::{prop_assert, prop_assert_eq, props};

fn design_with_sinks(points: &[(i64, i64)]) -> Design {
    let lib = standard_library();
    let die = Rect::new(Point::new(0, 0), Point::new(200_000, 200_000));
    let mut d = Design::new("t", die);
    let clk = d.add_net("clk");
    let cell = lib.cell_by_name("DFF_1X1").expect("cell");
    for (i, &(x, y)) in points.iter().enumerate() {
        d.add_register(
            format!("r{i}"),
            &lib,
            cell,
            Point::new(x, y),
            RegisterAttrs::clocked(clk),
        );
    }
    d
}

props! {
    /// Tree structure: every sink appears once, every node reaches the
    /// single root, fanout and level accounting are consistent.
    fn tree_invariants(points in vec_of((0i64..190_000, 0i64..190_000), 1usize..120)) {
        let d = design_with_sinks(&points);
        let cfg = CtsConfig::default();
        let trees = build_clock_trees(&d, &cfg);
        prop_assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        prop_assert_eq!(tree.sink_count(), points.len());
        prop_assert!(tree.buffer_count() >= 1);
        prop_assert!(tree.nodes[tree.root].parent.is_none());

        // Exactly one parentless node (the root), and it is a buffer.
        let roots = tree
            .nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .count();
        prop_assert_eq!(roots, 1);
        prop_assert_eq!(tree.nodes[tree.root].kind, TreeNodeKind::Buffer);

        // Fanout limit holds for every buffer.
        let mut fanout = vec![0usize; tree.nodes.len()];
        for node in &tree.nodes {
            if let Some(p) = node.parent {
                fanout[p] += 1;
            }
        }
        for (i, n) in tree.nodes.iter().enumerate() {
            match n.kind {
                TreeNodeKind::Buffer => prop_assert!(
                    fanout[i] <= cfg.max_fanout,
                    "buffer {i} drives {}",
                    fanout[i]
                ),
                TreeNodeKind::Sink { .. } => prop_assert_eq!(fanout[i], 0, "sinks are leaves"),
            }
        }

        // Acyclic: every node reaches the root within |nodes| hops.
        for i in 0..tree.nodes.len() {
            let mut cur = i;
            let mut hops = 0;
            while let Some(p) = tree.nodes[cur].parent {
                cur = p;
                hops += 1;
                prop_assert!(hops <= tree.nodes.len());
            }
            prop_assert_eq!(cur, tree.root);
        }
    }

    /// The aggregate report equals the per-tree metrics and scales
    /// monotonically: removing sinks never increases total capacitance.
    fn report_is_monotone_in_sinks(points in vec_of((0i64..190_000, 0i64..190_000), 2usize..80)) {
        let cfg = CtsConfig::default();
        let full = synthesize_clock_tree(&design_with_sinks(&points), &cfg);
        let fewer = synthesize_clock_tree(&design_with_sinks(&points[..points.len() / 2 + 1]), &cfg);
        prop_assert!(fewer.sinks < full.sinks || points.len() <= 2);
        prop_assert!(fewer.sink_cap_ff <= full.sink_cap_ff + 1e-9);
        prop_assert!(fewer.buffers <= full.buffers);
    }
}
