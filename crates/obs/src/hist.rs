//! Deterministic log-bucketed histograms (DESIGN.md §13).
//!
//! A [`HistogramData`] summarises a stream of `u64` observations (latencies
//! in nanoseconds, node counts, displacements) into fixed power-of-√2
//! buckets: every power of two is split once at its geometric midpoint, so
//! any recorded value is reconstructible to within a factor of √2. The
//! bucket layout is a pure function of the value — no per-histogram
//! configuration, no floating point — which gives the two properties the
//! perf pipeline needs:
//!
//! * **exact merge**: merging is bucket-wise integer addition, so any
//!   grouping or ordering of partial histograms produces the same result
//!   (parallel workers, [`crate::TaskObs`] replay, trace aggregation);
//! * **deterministic quantiles**: a quantile is the upper bound of the
//!   bucket holding the ranked observation (clamped to the observed max),
//!   a pure integer function of the bucket counts.
//!
//! The module also hosts the shared small-histogram utilities the rest of
//! the workspace dedupes onto: [`tally`] for exact count-by-key maps and
//! [`linear_bins`] for fixed-width f64 binning (timing-report style).

use std::collections::BTreeMap;

/// Largest bucket index [`bucket_index`] can return: bucket 0 holds the
/// value 0, and values `1..=u64::MAX` span two buckets per power of two.
pub const MAX_BUCKET: u32 = 128;

/// The bucket a value falls into. Bucket 0 is exactly the value 0; for
/// `v >= 1` with `2^b <= v < 2^(b+1)`, the bucket is `1 + 2b` when
/// `v < 2^b·√2` and `1 + 2b + 1` otherwise. The √2 comparison is done in
/// integers (`v² < 2^(2b+1)`), so the mapping is exact on every platform.
pub fn bucket_index(v: u64) -> u32 {
    if v == 0 {
        return 0;
    }
    let b = 63 - v.leading_zeros();
    let upper = ((v as u128) * (v as u128) >= 1u128 << (2 * b + 1)) as u32;
    1 + 2 * b + upper
}

/// Smallest `v` with `(v as u128)² >= target` (integer √2 boundaries).
fn sqrt_ceil(target: u128) -> u64 {
    let (mut lo, mut hi) = (0u64, u64::MAX);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if (mid as u128) * (mid as u128) >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// The inclusive `[lo, hi]` value range of a bucket. Bucket `2` (the upper
/// half of `[1, 2)`, which √2 never splits) is empty and returns `(2, 1)`;
/// [`bucket_index`] never produces it.
pub fn bucket_bounds(index: u32) -> (u64, u64) {
    assert!(index <= MAX_BUCKET, "bucket index {index} out of range");
    if index == 0 {
        return (0, 0);
    }
    let k = index - 1;
    let b = k / 2;
    let split = sqrt_ceil(1u128 << (2 * b + 1));
    if k.is_multiple_of(2) {
        (1u64 << b, split - 1)
    } else {
        let hi = if b == 63 {
            u64::MAX
        } else {
            (1u64 << (b + 1)) - 1
        };
        (split, hi)
    }
}

/// A log-bucketed summary of `u64` observations. See the module docs for
/// the bucket layout and the determinism guarantees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramData {
    /// Sparse bucket counts: bucket index → observations in it.
    buckets: BTreeMap<u32, u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observed values (saturating).
    sum: u64,
    /// Smallest observed value (`u64::MAX` while empty).
    min: u64,
    /// Largest observed value.
    max: u64,
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData::new()
    }
}

impl HistogramData {
    /// An empty histogram.
    pub fn new() -> HistogramData {
        HistogramData {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one — bucket-wise addition, so
    /// the result is independent of merge grouping and order.
    pub fn merge(&mut self, other: &HistogramData) {
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observed value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The sparse `(bucket index, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &n)| (b, n))
    }

    /// The `q`-quantile (`0.0..=1.0`) as a deterministic integer estimate:
    /// the upper bound of the bucket holding the observation of rank
    /// `ceil(q·count)`, clamped to the observed maximum. The true quantile
    /// `t` satisfies `t <= quantile(q) <= t·√2` (bucket width), and
    /// `quantile(1.0) == max()` exactly. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bounds(bucket).1.min(self.max);
            }
        }
        self.max
    }

    /// Rebuilds a histogram from its serialised parts (the JSONL trace
    /// shape), validating internal consistency: buckets in range with
    /// nonzero counts summing to `count`, and `min`/`max` falling in the
    /// lowest/highest occupied bucket.
    pub fn from_parts(
        buckets: Vec<(u32, u64)>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<HistogramData, String> {
        if count == 0 {
            if buckets.is_empty() && sum == 0 && max == 0 {
                return Ok(HistogramData::new());
            }
            return Err("empty histogram with nonempty parts".to_string());
        }
        let mut map = BTreeMap::new();
        let mut total = 0u64;
        let mut prev: Option<u32> = None;
        for (bucket, n) in buckets {
            if bucket > MAX_BUCKET {
                return Err(format!("bucket index {bucket} out of range"));
            }
            if n == 0 {
                return Err(format!("bucket {bucket} has a zero count"));
            }
            if prev.is_some_and(|p| p >= bucket) {
                return Err("bucket indices must be strictly increasing".to_string());
            }
            prev = Some(bucket);
            total = total.saturating_add(n);
            map.insert(bucket, n);
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, not count {count}"));
        }
        if min > max {
            return Err(format!("min {min} exceeds max {max}"));
        }
        let (Some(&first), Some(&last)) = (map.keys().next(), map.keys().next_back()) else {
            return Err("count is nonzero but no buckets were given".to_string());
        };
        if bucket_index(min) != first {
            return Err(format!("min {min} is not in the lowest bucket {first}"));
        }
        if bucket_index(max) != last {
            return Err(format!("max {max} is not in the highest bucket {last}"));
        }
        Ok(HistogramData {
            buckets: map,
            count,
            sum,
            min,
            max,
        })
    }
}

/// Adds one occurrence of `key` to an exact count-by-key map — the shared
/// tally idiom behind `core::stats` partition sizes and
/// `core::metrics::BitWidthHistogram`.
pub fn tally<K: Ord>(map: &mut BTreeMap<K, usize>, key: K) {
    *map.entry(key).or_insert(0) += 1;
}

/// Bins `values` into `bins` equal-width buckets over `[min, max]`,
/// returning `(min, max, counts)` — the fixed-width f64 histogram behind
/// `sta`'s slack report. Values on interior boundaries round down into the
/// lower bin; the maximum lands in the last bin. Empty input or zero
/// `bins` yields `(0.0, 0.0, [])`.
pub fn linear_bins(values: &[f64], bins: usize) -> (f64, f64, Vec<usize>) {
    if values.is_empty() || bins == 0 {
        return (0.0, 0.0, Vec::new());
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let mut counts = vec![0usize; bins];
    let span = (hi - lo).max(1e-12);
    for &v in values {
        let b = (((v - lo) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    (lo, hi, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* for seeded test data (no external deps).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn bucket_index_edge_cases() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 3);
        assert_eq!(bucket_index(3), 4); // 3² = 9 ≥ 2³ = 8
        assert_eq!(bucket_index(4), 5);
        assert_eq!(bucket_index(5), 5); // 5² = 25 < 2⁵ = 32
        assert_eq!(bucket_index(6), 6); // 6² = 36 ≥ 32
        assert_eq!(bucket_index(u64::MAX), MAX_BUCKET);
        // Powers of two always start the lower half-bucket.
        for b in 0..64 {
            assert_eq!(bucket_index(1u64 << b), 1 + 2 * b, "2^{b}");
        }
    }

    #[test]
    fn bucket_bounds_partition_the_value_space() {
        // Every bucket's bounds map back to the bucket, and consecutive
        // nonempty buckets tile the space without gaps.
        let mut expected_next = 0u64;
        for index in 0..=MAX_BUCKET {
            let (lo, hi) = bucket_bounds(index);
            if lo > hi {
                assert_eq!(index, 2, "only the unsplit [1,2) upper half is empty");
                continue;
            }
            assert_eq!(bucket_index(lo), index, "lo of {index}");
            assert_eq!(bucket_index(hi), index, "hi of {index}");
            assert_eq!(lo, expected_next, "gap before bucket {index}");
            expected_next = hi.wrapping_add(1);
        }
        assert_eq!(expected_next, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn bucket_width_is_at_most_sqrt2() {
        for index in 0..=MAX_BUCKET {
            let (lo, hi) = bucket_bounds(index);
            if lo > hi || lo == 0 {
                continue;
            }
            // hi < lo·√2 ⟺ hi² < 2·lo² ⟺ hi² − lo² < lo² (u128-safe:
            // both sides stay below 2^127).
            let (lo2, hi2) = ((lo as u128) * (lo as u128), (hi as u128) * (hi as u128));
            assert!(hi2 - lo2 < lo2, "bucket {index} [{lo}, {hi}] wider than √2");
        }
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = HistogramData::new();
        for v in [7, 0, 7, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 114);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert_eq!(h.buckets().map(|(_, n)| n).sum::<u64>(), 4);
        assert!((h.mean() - 28.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = HistogramData::new();
        assert!(h.is_empty());
        assert_eq!((h.min(), h.max(), h.sum(), h.count()), (0, 0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_exact_order_statistics() {
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        for round in 0..20 {
            let n = 1 + (rng.next() % 200) as usize;
            let spread = (1 + round * 7).min(63);
            let mut values: Vec<u64> = (0..n).map(|_| rng.next() % (1u64 << spread)).collect();
            let mut h = HistogramData::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = values[rank - 1];
                let est = h.quantile(q);
                let (_, hi) = bucket_bounds(bucket_index(exact));
                assert!(
                    exact <= est && est <= hi.min(h.max()),
                    "round {round} q={q}: exact {exact}, est {est}, bucket hi {hi}"
                );
            }
            assert_eq!(h.quantile(1.0), *values.last().expect("nonempty"));
        }
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        let mut rng = XorShift(42);
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..50).map(|_| rng.next() % 10_000).collect())
            .collect();
        let hist_of = |groups: &[&[u64]]| {
            let mut h = HistogramData::new();
            for g in groups {
                let mut part = HistogramData::new();
                for &v in *g {
                    part.record(v);
                }
                h.merge(&part);
            }
            h
        };
        let flat: Vec<u64> = parts.iter().flatten().copied().collect();
        let direct = {
            let mut h = HistogramData::new();
            for &v in &flat {
                h.record(v);
            }
            h
        };
        // ((a ⊕ b) ⊕ c), (a ⊕ (b ⊕ c)) and reorderings all equal the
        // directly recorded histogram.
        let ab_c = {
            let mut h = hist_of(&[&parts[0], &parts[1]]);
            h.merge(&hist_of(&[&parts[2]]));
            h
        };
        let a_bc = {
            let mut h = hist_of(&[&parts[0]]);
            h.merge(&hist_of(&[&parts[1], &parts[2]]));
            h
        };
        let cba = hist_of(&[&parts[2], &parts[1], &parts[0]]);
        assert_eq!(ab_c, direct);
        assert_eq!(a_bc, direct);
        assert_eq!(cba, direct);
        // Merging an empty histogram is the identity.
        let mut with_empty = direct.clone();
        with_empty.merge(&HistogramData::new());
        assert_eq!(with_empty, direct);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let mut h = HistogramData::new();
        for v in [1, 5, 5, 900, 0] {
            h.record(v);
        }
        let parts: Vec<(u32, u64)> = h.buckets().collect();
        let rebuilt =
            HistogramData::from_parts(parts.clone(), h.count(), h.sum(), h.min(), h.max())
                .expect("round trip");
        assert_eq!(rebuilt, h);
        // Empty round trip.
        assert_eq!(
            HistogramData::from_parts(Vec::new(), 0, 0, 0, 0).expect("empty"),
            HistogramData::new()
        );
        // Rejections.
        assert!(HistogramData::from_parts(parts.clone(), h.count() + 1, h.sum(), 0, 900).is_err());
        assert!(HistogramData::from_parts(vec![(1, 0)], 0, 0, 0, 0).is_err());
        assert!(HistogramData::from_parts(vec![(3, 1), (3, 1)], 2, 4, 2, 2).is_err());
        assert!(HistogramData::from_parts(vec![(200, 1)], 1, 1, 1, 1).is_err());
        assert!(
            HistogramData::from_parts(vec![(1, 1)], 1, 9, 9, 9).is_err(),
            "min not in bucket"
        );
        assert!(
            HistogramData::from_parts(vec![(1, 1)], 1, 1, 1, 0).is_err(),
            "min > max"
        );
    }

    #[test]
    fn tally_counts_by_key() {
        let mut map = BTreeMap::new();
        for k in [3u8, 1, 3, 3] {
            tally(&mut map, k);
        }
        assert_eq!(map.get(&3), Some(&3));
        assert_eq!(map.get(&1), Some(&1));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn linear_bins_matches_fixed_width_binning() {
        let (lo, hi, counts) = linear_bins(&[0.0, 1.0, 2.0, 3.9, 4.0], 4);
        assert_eq!((lo, hi), (0.0, 4.0));
        // The max lands in the last bin (clamped), boundaries round down
        // into the upper bin — the exact arithmetic of the original
        // sta::report::slack_histogram this helper dedupes.
        assert_eq!(counts, vec![1, 1, 1, 2]);
        // Degenerate spreads collapse into the first bin.
        let (lo, hi, counts) = linear_bins(&[2.5, 2.5], 3);
        assert_eq!((lo, hi), (2.5, 2.5));
        assert_eq!(counts, vec![2, 0, 0]);
        assert_eq!(linear_bins(&[], 4), (0.0, 0.0, Vec::new()));
        assert_eq!(linear_bins(&[1.0], 0), (0.0, 0.0, Vec::new()));
    }
}
