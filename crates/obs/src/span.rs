//! RAII timing spans with thread-local nesting.
//!
//! A span records its start on entry and emits exactly one event when the
//! guard drops, carrying its id, parent id, name, start and duration. Ids
//! are per-thread and allocated in entry order starting at 1; the id stack
//! tracks nesting so counters flushed inside a span reference it.

use std::cell::RefCell;

use crate::clock;
use crate::sink;
use crate::trace::TraceEvent;

thread_local! {
    /// (next id to hand out, stack of open span ids).
    static SPAN_STATE: RefCell<(u64, Vec<u64>)> = const { RefCell::new((1, Vec::new())) };
}

/// The id of the innermost open span on this thread, if any.
pub(crate) fn current_span_id() -> Option<u64> {
    SPAN_STATE.with(|s| s.borrow().1.last().copied())
}

/// Reserves `count` consecutive span ids on this thread and returns the
/// first. Task replay ([`crate::TaskObs`]) remaps a worker's locally
/// numbered spans into such a block so ids stay unique per trace.
pub(crate) fn allocate_ids(count: u64) -> u64 {
    SPAN_STATE.with(|s| {
        let mut state = s.borrow_mut();
        let base = state.0;
        state.0 += count;
        base
    })
}

/// Resets this thread's span ids for a deterministic scope ([`crate::with_sink`])
/// and returns the previous state for restoration.
pub(crate) fn reset_thread_state() -> (u64, Vec<u64>) {
    SPAN_STATE.with(|s| std::mem::replace(&mut *s.borrow_mut(), (1, Vec::new())))
}

/// Restores span-id state captured by [`reset_thread_state`].
pub(crate) fn restore_thread_state(state: (u64, Vec<u64>)) {
    SPAN_STATE.with(|s| *s.borrow_mut() = state);
}

/// An open timing region. Created by [`Span::enter`]; the event is emitted
/// when the guard drops, so a span's cost is two clock readings plus one
/// sink call — and nearly nothing when no sink is installed.
#[must_use = "a span measures the scope it lives in; dropping it immediately times nothing"]
pub struct Span {
    /// `None` when no sink was installed at entry: the span is inert and
    /// close emits nothing.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
}

impl Span {
    /// Opens a span named `name`. Names are `'static` dotted paths from the
    /// taxonomy in DESIGN.md §8 (e.g. `"flow.compose.assignment"`); the
    /// catalog is open, unlike counters, because stages come and go with
    /// the flow's shape.
    pub fn enter(name: &'static str) -> Span {
        if !sink::installed() {
            return Span { live: None };
        }
        let (id, parent) = SPAN_STATE.with(|s| {
            let mut state = s.borrow_mut();
            let id = state.0;
            state.0 += 1;
            let parent = state.1.last().copied();
            state.1.push(id);
            (id, parent)
        });
        Span {
            live: Some(LiveSpan {
                id,
                parent,
                name,
                start_ns: clock::now_ns(),
            }),
        }
    }

    /// This span's id, when live (a sink was installed at entry).
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }

    /// Nanoseconds since this span was entered (0 when inert).
    pub fn elapsed_ns(&self) -> u64 {
        self.live
            .as_ref()
            .map(|l| clock::now_ns().saturating_sub(l.start_ns))
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let end_ns = clock::now_ns();
        SPAN_STATE.with(|s| {
            let mut state = s.borrow_mut();
            // Pop this span; tolerate out-of-order drops (e.g. a panic
            // unwinding through several guards) by truncating to it.
            if let Some(pos) = state.1.iter().rposition(|&id| id == live.id) {
                state.1.truncate(pos);
            }
        });
        sink::emit(&TraceEvent::Span {
            id: live.id,
            parent: live.parent,
            name: live.name.to_string(),
            start_ns: live.start_ns,
            dur_ns: end_ns.saturating_sub(live.start_ns),
            task: None,
            pass: crate::pass::current_pass(),
        });
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::clock::{with_clock, MockClock};
    use crate::sink::{with_sink, Recorder};

    fn span_events(rec: &Recorder) -> Vec<(u64, Option<u64>, String, u64, u64)> {
        rec.events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Span {
                    id,
                    parent,
                    name,
                    start_ns,
                    dur_ns,
                    ..
                } => Some((id, parent, name, start_ns, dur_ns)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn span_without_sink_is_inert() {
        let span = Span::enter("test.inert");
        assert_eq!(span.id(), None);
        assert_eq!(span.elapsed_ns(), 0);
    }

    #[test]
    fn nested_spans_record_parent_and_close_inner_first() {
        let rec = Arc::new(Recorder::default());
        with_clock(Arc::new(MockClock::new(100)), || {
            with_sink(rec.clone(), || {
                let outer = Span::enter("test.outer");
                let inner = Span::enter("test.inner");
                drop(inner);
                drop(outer);
            })
        });
        let spans = span_events(&rec);
        assert_eq!(spans.len(), 2);
        // Inner closes (and is emitted) first.
        assert_eq!(spans[0].0, 2);
        assert_eq!(spans[0].1, Some(1));
        assert_eq!(spans[0].2, "test.inner");
        assert_eq!(spans[1].0, 1);
        assert_eq!(spans[1].1, None);
        assert_eq!(spans[1].2, "test.outer");
        // Mock clock: outer start 0, inner start 100, inner end 200,
        // outer end 300.
        assert_eq!(spans[0].3, 100);
        assert_eq!(spans[0].4, 100);
        assert_eq!(spans[1].3, 0);
        assert_eq!(spans[1].4, 300);
    }

    #[test]
    fn sibling_spans_share_parent() {
        let rec = Arc::new(Recorder::default());
        with_sink(rec.clone(), || {
            let outer = Span::enter("test.outer");
            drop(Span::enter("test.a"));
            drop(Span::enter("test.b"));
            drop(outer);
        });
        let spans = span_events(&rec);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].1, Some(1));
        assert_eq!(spans[1].1, Some(1));
        assert_eq!(spans[1].0, 3);
    }

    #[test]
    fn span_ids_reset_per_with_sink_scope() {
        let first = Arc::new(Recorder::default());
        let second = Arc::new(Recorder::default());
        with_sink(first.clone(), || drop(Span::enter("test.run")));
        with_sink(second.clone(), || drop(Span::enter("test.run")));
        assert_eq!(span_events(&first)[0].0, 1);
        assert_eq!(span_events(&second)[0].0, 1);
    }
}
