//! The composition flow's stage taxonomy and per-stage wall-clock
//! breakdown. Lives here (not in `mbr-core`) so checkers, benches, and
//! binaries can speak about stages without depending on the flow crate.

use std::fmt;
use std::time::Duration;

/// One stage of the composition flow, in execution order. Doubles as the
/// checkpoint tag on in-flow diagnostics: a diagnostic tagged `Mapping`
/// was caught by the checkpoint that runs right after the mapping stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowStage {
    /// Initial full static timing analysis plus the post-merge re-analysis.
    Timing,
    /// Compatibility-graph construction.
    Compat,
    /// Candidate (clique-subset) enumeration.
    Candidates,
    /// Set-partitioning assignment (the ILP, per partition).
    Assignment,
    /// Merging selected groups into multi-bit registers in the netlist.
    Mapping,
    /// Placement legalization of the merged design.
    Legalization,
    /// Useful-skew assignment.
    Skew,
    /// Post-merge register downsizing.
    Sizing,
    /// Scan-chain stitching and final bookkeeping.
    Stitch,
}

impl FlowStage {
    /// Every stage, in execution order.
    pub const ALL: [FlowStage; 9] = [
        FlowStage::Timing,
        FlowStage::Compat,
        FlowStage::Candidates,
        FlowStage::Assignment,
        FlowStage::Mapping,
        FlowStage::Legalization,
        FlowStage::Skew,
        FlowStage::Sizing,
        FlowStage::Stitch,
    ];

    /// The stage's stable lowercase name (used in span names and reports).
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Timing => "timing",
            FlowStage::Compat => "compat",
            FlowStage::Candidates => "candidates",
            FlowStage::Assignment => "assignment",
            FlowStage::Mapping => "mapping",
            FlowStage::Legalization => "legalization",
            FlowStage::Skew => "skew",
            FlowStage::Sizing => "sizing",
            FlowStage::Stitch => "stitch",
        }
    }

    /// The span name this stage is traced under.
    pub fn span_name(self) -> &'static str {
        match self {
            FlowStage::Timing => "flow.compose.timing",
            FlowStage::Compat => "flow.compose.compat",
            FlowStage::Candidates => "flow.compose.candidates",
            FlowStage::Assignment => "flow.compose.assignment",
            FlowStage::Mapping => "flow.compose.mapping",
            FlowStage::Legalization => "flow.compose.legalization",
            FlowStage::Skew => "flow.compose.skew",
            FlowStage::Sizing => "flow.compose.sizing",
            FlowStage::Stitch => "flow.compose.stitch",
        }
    }

    /// The stage for a stable lowercase name, if any.
    pub fn from_name(name: &str) -> Option<FlowStage> {
        FlowStage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock breakdown of one composition run: nanoseconds per
/// [`FlowStage`], plus the invariant-checkpoint bucket and the end-to-end
/// total. Stage buckets + `checks_ns` account for the total up to the
/// (negligible) inter-stage glue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    stage_ns: [u64; FlowStage::ALL.len()],
    /// Time spent in in-flow invariant checkpoints (`mbr-check`), which
    /// runs between stages and is kept out of their buckets.
    pub checks_ns: u64,
    /// End-to-end wall clock of the run.
    pub total_ns: u64,
}

impl StageTimings {
    /// Adds `ns` to `stage`'s bucket (stages hit more than once, like the
    /// post-merge timing re-analysis, accumulate).
    pub fn add(&mut self, stage: FlowStage, ns: u64) {
        self.stage_ns[stage as usize] += ns;
    }

    /// Nanoseconds attributed to `stage`.
    pub fn get(&self, stage: FlowStage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Sum of all stage buckets plus the checkpoint bucket (everything
    /// accounted for; compare against [`StageTimings::total_ns`]).
    pub fn accounted_ns(&self) -> u64 {
        self.stage_ns.iter().sum::<u64>() + self.checks_ns
    }

    /// The end-to-end total as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// `(stage, nanoseconds)` rows in execution order, including zero
    /// buckets (stages the options disabled still appear, at 0).
    pub fn rows(&self) -> impl Iterator<Item = (FlowStage, u64)> + '_ {
        FlowStage::ALL.into_iter().map(|s| (s, self.get(s)))
    }

    /// Merges another run's breakdown into this one (used when a flow
    /// composes twice, e.g. decomposition followed by recomposition).
    pub fn merge(&mut self, other: &StageTimings) {
        for (i, ns) in other.stage_ns.iter().enumerate() {
            self.stage_ns[i] += ns;
        }
        self.checks_ns += other.checks_ns;
        self.total_ns += other.total_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in FlowStage::ALL {
            assert_eq!(FlowStage::from_name(s.name()), Some(s));
            assert!(s.span_name().ends_with(s.name()));
        }
        assert_eq!(FlowStage::from_name("warp"), None);
    }

    #[test]
    fn timings_accumulate_and_account() {
        let mut t = StageTimings::default();
        t.add(FlowStage::Timing, 100);
        t.add(FlowStage::Timing, 50);
        t.add(FlowStage::Assignment, 200);
        t.checks_ns = 25;
        t.total_ns = 400;
        assert_eq!(t.get(FlowStage::Timing), 150);
        assert_eq!(t.accounted_ns(), 375);
        assert_eq!(t.rows().count(), FlowStage::ALL.len());
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = StageTimings::default();
        a.add(FlowStage::Compat, 10);
        a.total_ns = 30;
        let mut b = StageTimings::default();
        b.add(FlowStage::Compat, 5);
        b.checks_ns = 2;
        b.total_ns = 20;
        a.merge(&b);
        assert_eq!(a.get(FlowStage::Compat), 15);
        assert_eq!(a.checks_ns, 2);
        assert_eq!(a.total_ns, 50);
    }
}
