//! Event sinks and the emit dispatch.
//!
//! Dispatch order: the thread-local sink installed by [`with_sink`] wins
//! (hermetic tests), else the process-global sink installed by [`install`]
//! (binaries), else events are dropped before they are even constructed —
//! the no-op path allocates nothing.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::catalog::{Counter, Gauge, Histogram};
use crate::hist::HistogramData;
use crate::span;
use crate::trace::TraceEvent;

/// A consumer of observability events. Implementations must tolerate
/// concurrent `record` calls (binaries install one sink process-wide).
pub trait ObsSink: Send + Sync {
    /// Consumes one event. Called at span close and counter/gauge flush.
    fn record(&self, event: &TraceEvent);

    /// Persists any buffered state (e.g. a file writer). Default: nothing.
    fn flush(&self) {}
}

/// The default sink: discards everything. Exists so callers can make "no
/// tracing" explicit; the dispatch never actually routes through it.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// Fans one event stream out to several sinks (e.g. a JSONL trace file
/// plus an in-memory recorder for `--report`).
pub struct Tee {
    sinks: Vec<Arc<dyn ObsSink>>,
}

impl Tee {
    /// A sink forwarding every event to each of `sinks` in order.
    pub fn new(sinks: Vec<Arc<dyn ObsSink>>) -> Self {
        Tee { sinks }
    }
}

impl ObsSink for Tee {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// An in-memory sink keeping every event in arrival order. Backs tests and
/// the `--report` summary path.
#[derive(Default)]
pub struct Recorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl Recorder {
    /// A snapshot of everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// Drains everything recorded so far, in arrival order (the recorder
    /// stays usable). Backs task-obs capture, which hands the buffer over
    /// instead of copying it.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("recorder poisoned"))
    }
}

impl ObsSink for Recorder {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(event.clone());
    }
}

/// A sink that keeps only per-counter running totals — the cheap observer
/// the bench substrate uses to attach algorithmic-work numbers to timings.
#[derive(Default)]
pub struct CounterTotals {
    totals: Mutex<BTreeMap<String, u64>>,
}

impl CounterTotals {
    /// The accumulated totals, keyed by counter name, sorted by name.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        self.totals.lock().expect("totals poisoned").clone()
    }
}

impl ObsSink for CounterTotals {
    fn record(&self, event: &TraceEvent) {
        if let TraceEvent::Counter { name, value, .. } = event {
            *self
                .totals
                .lock()
                .expect("totals poisoned")
                .entry(name.clone())
                .or_insert(0) += value;
        }
    }
}

static GLOBAL_SINK: OnceLock<Arc<dyn ObsSink>> = OnceLock::new();

thread_local! {
    static LOCAL_SINK: RefCell<Option<Arc<dyn ObsSink>>> = const { RefCell::new(None) };
}

/// Installs the process-wide sink. Call once from a binary's startup (see
/// [`crate::init_cli`]); later calls are ignored, matching `OnceLock`.
pub fn install(sink: Arc<dyn ObsSink>) {
    let _ = GLOBAL_SINK.set(sink);
}

/// Flushes the process-wide sink, if any. Binaries call this before exit
/// so file-backed traces are fully on disk (`OnceLock` never drops).
pub fn flush_installed() {
    if let Some(sink) = GLOBAL_SINK.get() {
        sink.flush();
    }
}

/// True when some sink — thread-local or global — would receive events.
/// Hot paths may use this to skip building flush-side state entirely.
pub fn installed() -> bool {
    LOCAL_SINK.with(|s| s.borrow().is_some()) || GLOBAL_SINK.get().is_some()
}

/// Runs `f` with `sink` as this thread's sink, restoring the previous one
/// afterwards (also on panic). Span ids restart at 1 inside the scope so a
/// fixed workload traces byte-identically on every run.
pub fn with_sink<R>(sink: Arc<dyn ObsSink>, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev_sink: Option<Arc<dyn ObsSink>>,
        prev_ids: (u64, Vec<u64>),
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.prev_sink.take();
            LOCAL_SINK.with(|s| *s.borrow_mut() = prev);
            span::restore_thread_state(std::mem::take(&mut self.prev_ids));
        }
    }
    let prev_sink = LOCAL_SINK.with(|s| s.borrow_mut().replace(sink));
    let prev_ids = span::reset_thread_state();
    let _restore = Restore {
        prev_sink,
        prev_ids,
    };
    f()
}

/// Routes one event to the active sink, if any. The event is built by the
/// caller only after a cheap "is anyone listening" check — see [`emit`]'s
/// callers ([`counter`], [`gauge`], span close).
pub(crate) fn emit(event: &TraceEvent) {
    let local_hit = LOCAL_SINK.with(|s| {
        if let Some(sink) = &*s.borrow() {
            sink.record(event);
            true
        } else {
            false
        }
    });
    if !local_hit {
        if let Some(sink) = GLOBAL_SINK.get() {
            sink.record(event);
        }
    }
}

/// Flushes an accumulated counter total. Call once per operation with a
/// locally accumulated value, not per unit of work; zero totals are
/// dropped so quiet operations do not pad traces.
pub fn counter(counter: Counter, value: u64) {
    if value == 0 || !installed() {
        return;
    }
    emit(&TraceEvent::Counter {
        name: counter.name().to_string(),
        value,
        span: span::current_span_id(),
        pass: crate::pass::current_pass(),
    });
}

/// Records a point-in-time measured value.
pub fn gauge(gauge: Gauge, value: f64) {
    if !installed() {
        return;
    }
    emit(&TraceEvent::Gauge {
        name: gauge.name().to_string(),
        value,
        span: span::current_span_id(),
        pass: crate::pass::current_pass(),
    });
}

/// Flushes a locally accumulated distribution. Mirrors [`counter`]: build
/// the [`HistogramData`] with plain `record` calls in the hot loop and
/// flush once per operation; empty histograms are dropped so quiet
/// operations do not pad traces.
pub fn histogram(hist: Histogram, data: &HistogramData) {
    if data.is_empty() || !installed() {
        return;
    }
    emit(&TraceEvent::Hist {
        name: hist.name().to_string(),
        data: data.clone(),
        span: span::current_span_id(),
        pass: crate::pass::current_pass(),
    });
}

/// Records a single observation into a histogram — the one-shot form of
/// [`histogram`] for per-operation grains (one solve, one update).
pub fn observe(hist: Histogram, value: u64) {
    if !installed() {
        return;
    }
    let mut data = HistogramData::new();
    data.record(value);
    emit(&TraceEvent::Hist {
        name: hist.name().to_string(),
        data,
        span: span::current_span_id(),
        pass: crate::pass::current_pass(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_counter_is_dropped() {
        // Must not panic or leak anywhere observable.
        counter(Counter::SimplexPivots, 7);
        gauge(Gauge::WnsPs, -1.5);
    }

    #[test]
    fn zero_counter_is_not_recorded() {
        let rec = Arc::new(Recorder::default());
        with_sink(rec.clone(), || {
            counter(Counter::SimplexPivots, 0);
            counter(Counter::SimplexPivots, 3);
        });
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            TraceEvent::Counter { name, value: 3, span: None, .. } if name == "lp.simplex.pivots"
        ));
    }

    #[test]
    fn with_pass_stamps_emitted_events() {
        let rec = Arc::new(Recorder::default());
        with_sink(rec.clone(), || {
            counter(Counter::SimplexPivots, 1);
            crate::with_pass(2, || {
                counter(Counter::SimplexPivots, 1);
                gauge(Gauge::WnsPs, -1.0);
                drop(crate::Span::enter("test.pass"));
            });
        });
        let passes: Vec<Option<u64>> = rec
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Span { pass, .. }
                | TraceEvent::Counter { pass, .. }
                | TraceEvent::Gauge { pass, .. }
                | TraceEvent::Hist { pass, .. } => *pass,
            })
            .collect();
        assert_eq!(passes, [None, Some(2), Some(2), Some(2)]);
    }

    #[test]
    fn histogram_flush_drops_empty_and_records_full() {
        let rec = Arc::new(Recorder::default());
        with_sink(rec.clone(), || {
            histogram(Histogram::SetPartSolveNodes, &HistogramData::new());
            let mut data = HistogramData::new();
            data.record(3);
            data.record(40);
            histogram(Histogram::SetPartSolveNodes, &data);
            observe(Histogram::StaSeedPinsPerUpdate, 0);
        });
        let events = rec.events();
        assert_eq!(events.len(), 2, "empty histogram must be dropped");
        let TraceEvent::Hist {
            name, data, span, ..
        } = &events[0]
        else {
            panic!("expected hist event, got {:?}", events[0]);
        };
        assert_eq!(name, "lp.setpart.solve_nodes");
        assert_eq!((data.count(), data.min(), data.max()), (2, 3, 40));
        assert_eq!(*span, None);
        // observe() records a real zero-valued observation (count 1).
        let TraceEvent::Hist { data, .. } = &events[1] else {
            panic!("expected hist event");
        };
        assert_eq!((data.count(), data.max()), (1, 0));
    }

    #[test]
    fn counter_totals_accumulates() {
        let totals = Arc::new(CounterTotals::default());
        with_sink(totals.clone(), || {
            counter(Counter::SetPartNodesExplored, 5);
            counter(Counter::SetPartNodesExplored, 7);
            counter(Counter::SimplexPivots, 2);
        });
        let t = totals.totals();
        assert_eq!(t.get("lp.setpart.nodes_explored"), Some(&12));
        assert_eq!(t.get("lp.simplex.pivots"), Some(&2));
    }

    #[test]
    fn tee_duplicates_events() {
        let a = Arc::new(Recorder::default());
        let b = Arc::new(Recorder::default());
        let tee: Arc<dyn ObsSink> = Arc::new(Tee::new(vec![a.clone(), b.clone()]));
        with_sink(tee, || counter(Counter::SkewAdjusted, 1));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn with_sink_is_scoped_and_nested() {
        let outer = Arc::new(Recorder::default());
        let inner = Arc::new(Recorder::default());
        with_sink(outer.clone(), || {
            counter(Counter::SkewAdjusted, 1);
            with_sink(inner.clone(), || counter(Counter::SkewAdjusted, 2));
            counter(Counter::SkewAdjusted, 3);
        });
        let outer_vals: Vec<u64> = outer
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(outer_vals, [1, 3]);
        assert_eq!(inner.events().len(), 1);
    }
}
