//! Validates an `MBR_TRACE` JSONL file against the schema in
//! DESIGN.md §8 and prints its summary. Exit code 0 iff the trace parses
//! and every schema invariant holds; CI runs this on the trace artifact.
//!
//! `--truncated` switches to the relaxed mode for flight-recorder dumps
//! (DESIGN.md §13): events may reference spans evicted from the ring or
//! still open at dump time, so unresolved span references are legal while
//! every invariant among the retained events still holds. Strict mode
//! (the default) rejects such traces.

use std::process::ExitCode;

use mbr_obs::summary::Summary;
use mbr_obs::{parse_trace, validate_trace, validate_trace_truncated};

const USAGE: &str = "usage: trace-validate [--truncated] <trace.jsonl>";

fn main() -> ExitCode {
    let mut truncated = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--truncated" => truncated = true,
            _ if arg.starts_with('-') || path.is_some() => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace-validate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let events = match parse_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("trace-validate: {path}: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if truncated {
        validate_trace_truncated(&events)
    } else {
        validate_trace(&events)
    };
    if let Err(e) = result {
        eprintln!("trace-validate: {path}: schema violation: {e}");
        return ExitCode::FAILURE;
    }
    let mode = if truncated {
        "conform to the truncated trace schema"
    } else {
        "conform to the trace schema"
    };
    println!(
        "{path}: {} events ({} lines) {mode}",
        events.len(),
        text.lines().count()
    );
    print!("{}", Summary::from_events(&events).render());
    ExitCode::SUCCESS
}
