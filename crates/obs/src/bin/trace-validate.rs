//! Validates an `MBR_TRACE` JSONL file against the schema in
//! DESIGN.md §8 and prints its summary. Exit code 0 iff the trace parses
//! and every schema invariant holds; CI runs this on the trace artifact.

use std::process::ExitCode;

use mbr_obs::summary::Summary;
use mbr_obs::{parse_trace, validate_trace};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace-validate <trace.jsonl>");
        return ExitCode::from(2);
    };
    if args.next().is_some() {
        eprintln!("usage: trace-validate <trace.jsonl>");
        return ExitCode::from(2);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace-validate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let events = match parse_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("trace-validate: {path}: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_trace(&events) {
        eprintln!("trace-validate: {path}: schema violation: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: {} events ({} lines) conform to the trace schema",
        events.len(),
        text.lines().count()
    );
    print!("{}", Summary::from_events(&events).render());
    ExitCode::SUCCESS
}
