//! Aggregates a JSONL trace into a span-path profile: a top-N hot-path
//! table (inclusive/exclusive time per path) on stdout and, with
//! `--folded`, a flamegraph-compatible collapsed-stack file
//! (DESIGN.md §13).
//!
//! ```text
//! mbr-profile <trace.jsonl> [--top N] [--folded PATH] [--truncated]
//! ```
//!
//! Exit codes: 0 on success, 1 when the trace fails to parse or
//! validate, 2 on usage or I/O errors.

use std::process::ExitCode;

use mbr_obs::profile::{profile_events, to_folded};
use mbr_obs::{parse_trace, validate_trace, validate_trace_truncated};

const USAGE: &str = "usage: mbr-profile <trace.jsonl> [--top N] [--folded PATH] [--truncated]";

struct Args {
    path: String,
    top: usize,
    folded: Option<String>,
    truncated: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut top = 20usize;
    let mut folded = None;
    let mut truncated = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|_| format!("--top {v}: not a count"))?;
            }
            "--folded" => {
                folded = Some(args.next().ok_or("--folded needs a path")?);
            }
            "--truncated" => truncated = true,
            _ if arg.starts_with('-') || path.is_some() => {
                return Err(format!("unexpected argument '{arg}'"));
            }
            _ => path = Some(arg),
        }
    }
    Ok(Args {
        path: path.ok_or("missing trace path")?,
        top,
        folded,
        truncated,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mbr-profile: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("mbr-profile: {}: {e}", args.path);
            return ExitCode::from(2);
        }
    };
    let events = match parse_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("mbr-profile: {}: parse error: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let validated = if args.truncated {
        validate_trace_truncated(&events)
    } else {
        validate_trace(&events)
    };
    if let Err(e) = validated {
        eprintln!("mbr-profile: {}: schema violation: {e}", args.path);
        return ExitCode::FAILURE;
    }
    let profile = profile_events(&events);
    println!(
        "{}: {} spans over {} paths, {}ns root time, {}ns total exclusive",
        args.path,
        profile.spans,
        profile.paths.len(),
        profile.root_ns,
        profile.total_exclusive_ns()
    );
    print!("{}", profile.render_hot_paths(args.top));
    if let Some(folded_path) = &args.folded {
        if let Err(e) = std::fs::write(folded_path, to_folded(&profile)) {
            eprintln!("mbr-profile: {folded_path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "mbr-profile: wrote {} collapsed stacks to {folded_path}",
            profile.paths.len()
        );
    }
    ExitCode::SUCCESS
}
