//! Diffs two perf artifacts — JSONL traces or `BENCH_*.json` files — or
//! gates a trace against the committed `PERF_baseline.json`
//! (DESIGN.md §13).
//!
//! ```text
//! mbr-perfdiff <a> <b> [--tolerance PCT] [--fail-on-timing] [--out PATH]
//! mbr-perfdiff --baseline PERF_baseline.json <trace.jsonl> [--out PATH]
//! mbr-perfdiff --write-baseline PERF_baseline.json <trace.jsonl> [--source NOTE]
//! ```
//!
//! Inputs ending in `.jsonl` are traces (validated, then summarised);
//! anything else is parsed as a bench suite file. Deterministic
//! quantities (counters, non-timing histograms) must match exactly;
//! wall-clock quantities are compared within `--tolerance` (default 20%)
//! and reported as advisory flags unless `--fail-on-timing` promotes
//! them to failures.
//!
//! Exit codes: 0 clean, 1 diff failures (or parse/validation errors),
//! 2 usage or I/O errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use mbr_obs::perfdiff::{
    diff_against_baseline, diff_bench, diff_traces, parse_baseline, parse_bench, render_baseline,
    Baseline, DiffReport,
};
use mbr_obs::summary::Summary;
use mbr_obs::{parse_trace, validate_trace};

const USAGE: &str = "usage: mbr-perfdiff <a> <b> [--tolerance PCT] [--fail-on-timing] [--out PATH]
       mbr-perfdiff --baseline PERF_baseline.json <trace.jsonl> [--out PATH]
       mbr-perfdiff --write-baseline PERF_baseline.json <trace.jsonl> [--source NOTE]";

struct Args {
    inputs: Vec<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    source: Option<String>,
    tolerance: f64,
    fail_on_timing: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        inputs: Vec::new(),
        baseline: None,
        write_baseline: None,
        source: None,
        tolerance: 20.0,
        fail_on_timing: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => parsed.baseline = Some(args.next().ok_or("--baseline needs a path")?),
            "--write-baseline" => {
                parsed.write_baseline = Some(args.next().ok_or("--write-baseline needs a path")?)
            }
            "--source" => parsed.source = Some(args.next().ok_or("--source needs a note")?),
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a percentage")?;
                parsed.tolerance = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .ok_or(format!("--tolerance {v}: not a percentage"))?;
            }
            "--fail-on-timing" => parsed.fail_on_timing = true,
            "--out" => parsed.out = Some(args.next().ok_or("--out needs a path")?),
            _ if arg.starts_with('-') => return Err(format!("unexpected flag '{arg}'")),
            _ => parsed.inputs.push(arg),
        }
    }
    let expected = if parsed.baseline.is_some() || parsed.write_baseline.is_some() {
        1
    } else {
        2
    };
    if parsed.inputs.len() != expected {
        return Err(format!(
            "expected {expected} input path(s), got {}",
            parsed.inputs.len()
        ));
    }
    Ok(parsed)
}

enum Loaded {
    Trace(Summary),
    Bench(mbr_obs::perfdiff::BenchFile),
}

/// Failure (exit 1) as `Ok(Err(message))`, I/O trouble (exit 2) as `Err`.
fn load(path: &str) -> Result<Result<Loaded, String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".jsonl") {
        let events = match parse_trace(&text) {
            Ok(events) => events,
            Err(e) => return Ok(Err(format!("{path}: parse error: {e}"))),
        };
        if let Err(e) = validate_trace(&events) {
            return Ok(Err(format!("{path}: schema violation: {e}")));
        }
        Ok(Ok(Loaded::Trace(Summary::from_events(&events))))
    } else {
        match parse_bench(&text) {
            Ok(bench) => Ok(Ok(Loaded::Bench(bench))),
            Err(e) => Ok(Err(format!("{path}: bench parse error: {e}"))),
        }
    }
}

fn trace_counters(path: &str) -> Result<Result<BTreeMap<String, u64>, String>, String> {
    if !path.ends_with(".jsonl") {
        return Ok(Err(format!(
            "{path}: baseline gating needs a .jsonl trace input"
        )));
    }
    Ok(match load(path)? {
        Ok(Loaded::Trace(summary)) => Ok(summary.counters),
        Ok(Loaded::Bench(_)) => unreachable!("checked extension"),
        Err(e) => Err(e),
    })
}

fn emit(report: &DiffReport, out: &Option<String>) -> Result<(), String> {
    let text = report.render();
    print!("{text}");
    if let Some(path) = out {
        std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<Result<DiffReport, String>, String> {
    if let Some(baseline_path) = &args.write_baseline {
        let counters = match trace_counters(&args.inputs[0])? {
            Ok(counters) => counters,
            Err(e) => return Ok(Err(e)),
        };
        let baseline = Baseline {
            source: args
                .source
                .clone()
                .unwrap_or_else(|| args.inputs[0].clone()),
            counters,
        };
        std::fs::write(baseline_path, render_baseline(&baseline))
            .map_err(|e| format!("{baseline_path}: {e}"))?;
        println!(
            "mbr-perfdiff: wrote {} counters to {baseline_path}",
            baseline.counters.len()
        );
        return Ok(Ok(DiffReport::default()));
    }
    if let Some(baseline_path) = &args.baseline {
        let text =
            std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline = match parse_baseline(&text) {
            Ok(baseline) => baseline,
            Err(e) => return Ok(Err(format!("{baseline_path}: {e}"))),
        };
        let counters = match trace_counters(&args.inputs[0])? {
            Ok(counters) => counters,
            Err(e) => return Ok(Err(e)),
        };
        return Ok(Ok(diff_against_baseline(&baseline, &counters)));
    }
    let a = match load(&args.inputs[0])? {
        Ok(a) => a,
        Err(e) => return Ok(Err(e)),
    };
    let b = match load(&args.inputs[1])? {
        Ok(b) => b,
        Err(e) => return Ok(Err(e)),
    };
    match (a, b) {
        (Loaded::Trace(a), Loaded::Trace(b)) => Ok(Ok(diff_traces(&a, &b, args.tolerance))),
        (Loaded::Bench(a), Loaded::Bench(b)) => Ok(Ok(diff_bench(&a, &b, args.tolerance))),
        _ => Ok(Err(
            "cannot diff a trace against a bench file (mixed .jsonl / .json inputs)".to_string(),
        )),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mbr-perfdiff: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(Ok(report)) => {
            if args.write_baseline.is_some() {
                return ExitCode::SUCCESS;
            }
            if emit(&report, &args.out).is_err() {
                return ExitCode::from(2);
            }
            let failed = !report.is_clean() || (args.fail_on_timing && report.flags > 0);
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Ok(Err(e)) => {
            eprintln!("mbr-perfdiff: {e}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("mbr-perfdiff: {e}");
            ExitCode::from(2)
        }
    }
}
