//! The closed, typed catalog of counters, gauges and histograms the
//! workspace emits.
//!
//! Keeping the catalog in one enum (instead of free-form strings) makes the
//! JSONL schema checkable: [`crate::validate_trace`] rejects any counter,
//! gauge or histogram name not registered here, so a typo in an
//! instrumentation site is a validation failure, not a silently new metric.

use std::fmt;

/// A monotonically accumulated unit of algorithmic work. Instrumented code
/// counts locally in its hot loop and flushes one total per operation via
/// [`crate::counter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Simplex pivot operations (both phases) in `mbr-lp`.
    SimplexPivots,
    /// Set-partitioning solver invocations in `mbr-lp`.
    SetPartSolves,
    /// Set-partitioning branch-and-bound nodes explored.
    SetPartNodesExplored,
    /// Set-partitioning nodes cut by the fractional lower bound (or a dead
    /// end) before branching.
    SetPartNodesPruned,
    /// Set-partitioning incumbent improvements (a better cover found).
    SetPartIncumbentImprovements,
    /// Full from-scratch timing analyses (`Sta::new`) — the incremental
    /// path's fallback.
    StaFullAnalyses,
    /// Incremental timing updates (`Sta::update_after_change`).
    StaIncrementalUpdates,
    /// Nets whose arcs/loads an incremental timing update refreshed.
    StaNetsTouched,
    /// Seed pins an incremental timing update re-propagated from.
    StaSeedPins,
    /// Seed pins a full from-scratch analysis propagated from (every pin).
    StaFullSeedPins,
    /// Row gaps the legalizer probed while searching for free sites.
    LegalizeGapProbes,
    /// Instances the legalizer actually displaced.
    LegalizeCellsMoved,
    /// Composable registers in the compatibility graph.
    CompatRegisters,
    /// Edges of the compatibility graph.
    CompatEdges,
    /// Partitions the compatibility graph decomposed into.
    CandidatePartitions,
    /// Sub-clique subsets visited during candidate enumeration (including
    /// rejected ones — the enumeration's true workload).
    CandidateSubsetsVisited,
    /// Candidates accepted into the assignment ILP (incl. singletons).
    CandidatesEnumerated,
    /// Registers whose clock offset useful-skew assignment changed.
    SkewAdjusted,
    /// Diagnostics emitted by one in-flow invariant checkpoint.
    CheckDiagnostics,
    /// Partitions whose candidates and ILP solution an incremental
    /// recompose reused from the session cache.
    SessionPartitionsReused,
    /// Partitions an incremental recompose enumerated and solved afresh.
    SessionPartitionsRecomputed,
    /// ECOs applied to a composition session.
    SessionEcosApplied,
    /// Composable-register entries an incremental recompose reused from the
    /// session's compatibility cache (clean registers it did not recompute).
    SessionCompatReused,
    /// Candidate subsets the enumeration pre-filters skipped or cut before
    /// validation (duplicate sub-clique visits and empty-region subtrees).
    SetPartCandidatesFiltered,
    /// Compatibility-graph edges dropped because their endpoints can never
    /// co-inhabit a selectable candidate (combined width exceeds every
    /// library cell of the class).
    CompatEdgesRemoved,
    /// Branch-and-bound prunes attributable to the LP-relaxation dual bound
    /// (the static fractional bound alone would not have cut the node),
    /// including root solves closed outright by the relaxation.
    SetPartLpBoundCuts,
    /// Row probe-sets the dirty-region legalizer replayed from the session
    /// cache instead of re-probing (strictly less work than batch).
    LegalizeRowsSkipped,
    /// Skew sinks whose cached adjustment a session pass replayed after
    /// validating its timing inputs, instead of recomputing the decision.
    SkewSinksSkipped,
    /// Root subtrees the set-partitioning solver handed to the speculative
    /// parallel branch-and-bound commit loop (thread-count invariant).
    SetPartSubtreesSpawned,
    /// Speculative subtrees whose result could not be committed (an earlier
    /// branch improved the incumbent first, or the node budget intervened)
    /// and were re-explored serially for determinism.
    SetPartSubtreeRestarts,
}

impl Counter {
    /// Every counter, in catalog order (documentation and validation).
    pub const ALL: [Counter; 30] = [
        Counter::SimplexPivots,
        Counter::SetPartSolves,
        Counter::SetPartNodesExplored,
        Counter::SetPartNodesPruned,
        Counter::SetPartIncumbentImprovements,
        Counter::StaFullAnalyses,
        Counter::StaIncrementalUpdates,
        Counter::StaNetsTouched,
        Counter::StaSeedPins,
        Counter::StaFullSeedPins,
        Counter::LegalizeGapProbes,
        Counter::LegalizeCellsMoved,
        Counter::CompatRegisters,
        Counter::CompatEdges,
        Counter::CandidatePartitions,
        Counter::CandidateSubsetsVisited,
        Counter::CandidatesEnumerated,
        Counter::SkewAdjusted,
        Counter::CheckDiagnostics,
        Counter::SessionPartitionsReused,
        Counter::SessionPartitionsRecomputed,
        Counter::SessionEcosApplied,
        Counter::SessionCompatReused,
        Counter::SetPartCandidatesFiltered,
        Counter::CompatEdgesRemoved,
        Counter::SetPartLpBoundCuts,
        Counter::LegalizeRowsSkipped,
        Counter::SkewSinksSkipped,
        Counter::SetPartSubtreesSpawned,
        Counter::SetPartSubtreeRestarts,
    ];

    /// The stable dotted name used in traces and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SimplexPivots => "lp.simplex.pivots",
            Counter::SetPartSolves => "lp.setpart.solves",
            Counter::SetPartNodesExplored => "lp.setpart.nodes_explored",
            Counter::SetPartNodesPruned => "lp.setpart.nodes_pruned",
            Counter::SetPartIncumbentImprovements => "lp.setpart.incumbent_improvements",
            Counter::StaFullAnalyses => "sta.full_analyses",
            Counter::StaIncrementalUpdates => "sta.incremental_updates",
            Counter::StaNetsTouched => "sta.incremental.nets_touched",
            Counter::StaSeedPins => "sta.incremental.seed_pins",
            Counter::StaFullSeedPins => "sta.full.seed_pins",
            Counter::LegalizeGapProbes => "place.legalize.gap_probes",
            Counter::LegalizeCellsMoved => "place.legalize.cells_moved",
            Counter::CompatRegisters => "core.compat.registers",
            Counter::CompatEdges => "core.compat.edges",
            Counter::CandidatePartitions => "core.candidates.partitions",
            Counter::CandidateSubsetsVisited => "core.candidates.subsets_visited",
            Counter::CandidatesEnumerated => "core.candidates.enumerated",
            Counter::SkewAdjusted => "cts.skew.adjusted",
            Counter::CheckDiagnostics => "check.diagnostics",
            Counter::SessionPartitionsReused => "core.session.partitions_reused",
            Counter::SessionPartitionsRecomputed => "core.session.partitions_recomputed",
            Counter::SessionEcosApplied => "core.session.ecos_applied",
            Counter::SessionCompatReused => "core.session.compat_reused",
            Counter::SetPartCandidatesFiltered => "core.candidates.filtered",
            Counter::CompatEdgesRemoved => "core.compat.edges_removed",
            Counter::SetPartLpBoundCuts => "lp.setpart.lp_bound_cuts",
            Counter::LegalizeRowsSkipped => "place.legalize.rows_skipped",
            Counter::SkewSinksSkipped => "cts.skew.sinks_skipped",
            Counter::SetPartSubtreesSpawned => "lp.setpart.subtrees_spawned",
            Counter::SetPartSubtreeRestarts => "lp.setpart.subtree_restarts",
        }
    }

    /// The catalog entry for a dotted name, if registered.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time measured value (not accumulated across flushes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Gauge {
    /// Worst negative slack after an operation, ps.
    WnsPs,
    /// Total negative slack after an operation, ps.
    TnsPs,
    /// Largest single displacement a legalization pass caused, DBU.
    LegalizeMaxDisplacement,
    /// Timing arcs in the CSR arena after a from-scratch graph build.
    StaArenaArcs,
    /// Occupied slots in the session's SoA partition memo after a pass.
    PartitionMemoSlots,
}

impl Gauge {
    /// Every gauge, in catalog order.
    pub const ALL: [Gauge; 5] = [
        Gauge::WnsPs,
        Gauge::TnsPs,
        Gauge::LegalizeMaxDisplacement,
        Gauge::StaArenaArcs,
        Gauge::PartitionMemoSlots,
    ];

    /// The stable dotted name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::WnsPs => "sta.wns_ps",
            Gauge::TnsPs => "sta.tns_ps",
            Gauge::LegalizeMaxDisplacement => "place.legalize.max_displacement_dbu",
            Gauge::StaArenaArcs => "sta.arena.arcs",
            Gauge::PartitionMemoSlots => "core.session.memo_slots",
        }
    }

    /// The catalog entry for a dotted name, if registered.
    pub fn from_name(name: &str) -> Option<Gauge> {
        Gauge::ALL.into_iter().find(|g| g.name() == name)
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A distribution of per-operation observations, recorded into the
/// deterministic log-bucketed [`crate::HistogramData`] and flushed via
/// [`crate::histogram`] / [`crate::observe`]. Timing-valued entries
/// ([`Histogram::is_timing`]) carry wall-clock readings and are exempt
/// from the exact-match determinism contract counters obey; all other
/// entries are pure algorithmic quantities and must be byte-identical at
/// any thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Histogram {
    /// Per-partition set-partitioning ILP solve latency, nanoseconds.
    SetPartSolveNs,
    /// Per-partition branch-and-bound nodes explored by one solve.
    SetPartSolveNodes,
    /// Seed pins re-propagated by one incremental timing update.
    StaSeedPinsPerUpdate,
    /// Displacement (Manhattan, DBU) of one instance placed by the
    /// legalizer — including zero for instances legal in place.
    LegalizeDisplacement,
    /// Candidates enumerated for one partition (incl. singletons).
    CandidatesPerPartition,
    /// Absolute useful-skew adjustment applied to one register, ps.
    SkewAbsAdjustPs,
}

impl Histogram {
    /// Every histogram, in catalog order.
    pub const ALL: [Histogram; 6] = [
        Histogram::SetPartSolveNs,
        Histogram::SetPartSolveNodes,
        Histogram::StaSeedPinsPerUpdate,
        Histogram::LegalizeDisplacement,
        Histogram::CandidatesPerPartition,
        Histogram::SkewAbsAdjustPs,
    ];

    /// The stable dotted name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            Histogram::SetPartSolveNs => "lp.setpart.solve_ns",
            Histogram::SetPartSolveNodes => "lp.setpart.solve_nodes",
            Histogram::StaSeedPinsPerUpdate => "sta.incremental.seed_pins_per_update",
            Histogram::LegalizeDisplacement => "place.legalize.displacement_dbu",
            Histogram::CandidatesPerPartition => "core.candidates.per_partition",
            Histogram::SkewAbsAdjustPs => "cts.skew.abs_adjust_ps",
        }
    }

    /// Whether the observations are wall-clock readings. Timing histograms
    /// render with time units and are compared with tolerance by
    /// `mbr-perfdiff`; everything else must match exactly between
    /// same-seed runs.
    pub fn is_timing(self) -> bool {
        matches!(self, Histogram::SetPartSolveNs)
    }

    /// The catalog entry for a dotted name, if registered.
    pub fn from_name(name: &str) -> Option<Histogram> {
        Histogram::ALL.into_iter().find(|h| h.name() == name)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_const_matches_variant_count() {
        // The compiler pins ALL's length; this pins that no two entries
        // collide on the wire name.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for g in Gauge::ALL {
            assert_eq!(Gauge::from_name(g.name()), Some(g));
        }
        for h in Histogram::ALL {
            assert_eq!(Histogram::from_name(h.name()), Some(h));
        }
        assert_eq!(Counter::from_name("no.such.counter"), None);
        assert_eq!(Gauge::from_name("no.such.gauge"), None);
        assert_eq!(Histogram::from_name("no.such.hist"), None);
    }

    #[test]
    fn histogram_names_are_unique_and_disjoint_from_counters() {
        let mut names: Vec<&str> = Histogram::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Histogram::ALL.len());
        for h in Histogram::ALL {
            assert_eq!(Counter::from_name(h.name()), None, "{h}");
            assert_eq!(Gauge::from_name(h.name()), None, "{h}");
        }
    }
}
