//! A plain-text table renderer — the one output path every flow binary
//! shares, replacing per-binary ad-hoc `println!` formatting.

/// How a column's cells are padded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (text).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A fixed-column text table with a header row and a rule beneath it.
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers, all left-aligned.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Right-aligns the given (0-based) columns; typical for numbers.
    pub fn right_align(mut self, cols: impl IntoIterator<Item = usize>) -> Table {
        for col in cols {
            if let Some(a) = self.aligns.get_mut(col) {
                *a = Align::Right;
            }
        }
        self
    }

    /// Appends a data row. Short rows are padded with empty cells; long
    /// rows are truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows added so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with two-space column gutters and a dashed rule
    /// under the header. Ends with a newline.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                let last = i + 1 == ncols;
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        // No trailing spaces on the last column.
                        if !last {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        emit_row(&self.headers, &mut out);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        emit_row(&rule, &mut out);
        for row in &self.rows {
            emit_row(row, &mut out);
        }
        out
    }
}

/// Formats nanoseconds for reports: microsecond precision in
/// milliseconds (`12.345 ms`), switching to seconds above 10 s.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else {
        format!("{:.3} ms", ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["stage", "time"]).right_align([1]);
        t.row(["timing", "1.000 ms"]);
        t.row(["assignment", "12.500 ms"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "stage            time");
        assert_eq!(lines[1], "----------  ---------");
        assert_eq!(lines[2], "timing       1.000 ms");
        assert_eq!(lines[3], "assignment  12.500 ms");
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x"]);
        t.row(["1", "2", "3"]);
        let out = t.render();
        assert!(out.lines().count() == 4);
        assert!(!out.contains('3'));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(1_500_000), "1.500 ms");
        assert_eq!(fmt_ns(12_340_000_000), "12.34 s");
    }
}
