//! Zero-dependency observability for the composition flow: structured
//! spans, typed counters/gauges, JSONL tracing, and per-stage summaries.
//!
//! The flow's headline claims are throughput claims (the paper's Table 2
//! reports per-design ILP runtimes; Fig. 5 sweeps window size against
//! solver cost), so every layer of this workspace reports where its time
//! and algorithmic work go:
//!
//! * [`Span`] — RAII-guarded, nested timing regions stamped by an
//!   injectable [`Clock`] (monotonic in binaries, [`MockClock`] in tests,
//!   preserving the hermetic-test story);
//! * [`Counter`] / [`Gauge`] — a closed, typed catalog of the flow's
//!   algorithmic work (simplex pivots, branch-and-bound nodes, incremental
//!   STA scope, legalizer probes, candidate-space sizes);
//! * [`ObsSink`] — where events go. The default is a no-op: with no sink
//!   installed the instrumentation reduces to a thread-local check, so the
//!   hot paths cost the same as before this crate existed;
//! * [`trace`] — a line-oriented JSONL emitter/parser/validator
//!   ([`JsonlSink`], [`parse_trace`], [`validate_trace`]) behind the
//!   `MBR_TRACE=<path>` convention;
//! * [`summary`] / [`table`] — the shared human-readable reporting path
//!   (`--report` on the flow binaries);
//! * [`FlowStage`] / [`StageTimings`] — the span taxonomy of the
//!   composition flow and its per-stage wall-clock breakdown.
//!
//! Instrumented layers accumulate plain local integers in their hot loops
//! and *flush* them once per operation via [`counter`]; nothing dynamic
//! happens per node/pivot/probe.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use mbr_obs::{self as obs, Counter, MockClock, Recorder};
//!
//! let rec = Arc::new(Recorder::default());
//! obs::with_clock(Arc::new(MockClock::new(1_000)), || {
//!     obs::with_sink(rec.clone(), || {
//!         let span = obs::Span::enter("flow.compose");
//!         obs::counter(Counter::SimplexPivots, 42);
//!         drop(span);
//!     })
//! });
//! assert_eq!(rec.events().len(), 2);
//! ```

mod catalog;
mod clock;
mod flight;
pub mod hist;
mod pass;
pub mod perfdiff;
pub mod profile;
mod sink;
mod span;
mod stage;
pub mod summary;
pub mod table;
mod task;
pub mod trace;

pub use catalog::{Counter, Gauge, Histogram};
pub use clock::{now_ns, with_clock, Clock, MockClock, MonotonicClock};
pub use flight::{dump_flight_recorder, flight_recorder, FlightRecorder};
pub use hist::HistogramData;
pub use pass::{current_pass, with_pass};
pub use sink::{
    counter, flush_installed, gauge, histogram, install, installed, observe, with_sink,
    CounterTotals, NoopSink, ObsSink, Recorder, Tee,
};
pub use span::Span;
pub use stage::{FlowStage, StageTimings};
pub use task::{SpanHandle, TaskObs};
pub use trace::{
    parse_trace, to_jsonl, validate_trace, validate_trace_truncated, JsonlSink, TraceError,
    TraceEvent,
};

use std::sync::Arc;

/// What [`init_cli`] set up for a binary: the optional in-memory recorder
/// backing `--report` output. The JSONL sink (if `MBR_TRACE` was set) is
/// installed globally and reachable via [`flush_installed`].
pub struct CliObs {
    /// Recording sink for post-run summaries, present when requested.
    pub recorder: Option<Arc<Recorder>>,
}

impl CliObs {
    /// Flushes the installed sinks (call before process exit so a JSONL
    /// trace is fully on disk).
    pub fn finish(&self) {
        flush_installed();
    }
}

/// Standard observability setup for the flow binaries: if the `MBR_TRACE`
/// environment variable names a path, a [`JsonlSink`] writing there is
/// installed; if `MBR_FLIGHT_RECORDER=<n>` is set, a [`FlightRecorder`]
/// retaining the last `n` events is installed, registered for
/// [`dump_flight_recorder`], and hooked into the panic handler so a crash
/// dumps the ring; if `report` is true (the `--report` flag), a
/// [`Recorder`] is installed as well (teed with the others) and returned
/// for rendering a [`summary::Summary`] after the run.
///
/// # Panics
///
/// Panics when `MBR_TRACE` is set but the file cannot be created, or when
/// `MBR_FLIGHT_RECORDER` is not a positive integer — a requested trace
/// that silently vanishes is worse than a loud failure.
pub fn init_cli(report: bool) -> CliObs {
    let mut sinks: Vec<Arc<dyn ObsSink>> = Vec::new();
    if let Some(path) = std::env::var_os("MBR_TRACE") {
        let sink = JsonlSink::create(&path)
            .unwrap_or_else(|e| panic!("MBR_TRACE={}: {e}", path.to_string_lossy()));
        sinks.push(Arc::new(sink));
    }
    if let Ok(cap) = std::env::var("MBR_FLIGHT_RECORDER") {
        let cap: usize =
            cap.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                panic!("MBR_FLIGHT_RECORDER={cap}: expected a positive integer")
            });
        let recorder = Arc::new(FlightRecorder::new(cap));
        flight::register(recorder.clone());
        sinks.push(recorder);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            dump_flight_recorder("panic");
        }));
    }
    let recorder = if report {
        let rec = Arc::new(Recorder::default());
        sinks.push(rec.clone());
        Some(rec)
    } else {
        None
    };
    match sinks.len() {
        0 => {}
        1 => {
            install(sinks.pop().expect("one sink"));
        }
        _ => {
            install(Arc::new(Tee::new(sinks)));
        }
    }
    CliObs { recorder }
}
