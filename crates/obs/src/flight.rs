//! The flight recorder: a bounded ring-buffer [`ObsSink`] for post-mortem
//! forensics (DESIGN.md §13).
//!
//! Paper-scale runs default to no observability — when one fails after
//! minutes of work there is nothing to debug with. Setting
//! `MBR_FLIGHT_RECORDER=<n>` makes [`crate::init_cli`] install a
//! [`FlightRecorder`] retaining the last `n` events at near-no-op cost
//! (one mutex push per event, no I/O). On panic, on a check-error
//! diagnostic, or on any nonzero exit, the binary dumps the ring as a
//! truncated JSONL trace that `trace-validate --truncated` accepts.
//!
//! The dump goes to `MBR_FLIGHT_RECORDER_OUT` when set, else
//! `target/flight-recorder.jsonl`.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::sink::ObsSink;
use crate::trace::{to_jsonl, TraceEvent};

/// A bounded in-memory event ring: the newest `capacity` events survive,
/// older ones are evicted in arrival order.
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<Ring>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (at least one).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(Ring {
                events: VecDeque::new(),
                evicted: 0,
            }),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match self.state.lock() {
            Ok(ring) => ring.events.iter().cloned().collect(),
            Err(_) => Vec::new(),
        }
    }

    /// How many events have been evicted from the head of the ring.
    pub fn evicted(&self) -> u64 {
        match self.state.lock() {
            Ok(ring) => ring.evicted,
            Err(_) => 0,
        }
    }

    /// Writes the retained events as a (possibly truncated) JSONL trace.
    pub fn dump(&self, path: &Path) -> std::io::Result<(usize, u64)> {
        let (text, len, evicted) = match self.state.lock() {
            Ok(ring) => {
                let events: Vec<TraceEvent> = ring.events.iter().cloned().collect();
                (to_jsonl(&events), events.len(), ring.evicted)
            }
            Err(_) => (String::new(), 0, 0),
        };
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(text.as_bytes())?;
        Ok((len, evicted))
    }
}

impl ObsSink for FlightRecorder {
    fn record(&self, event: &TraceEvent) {
        // A poisoned ring (a panic inside a clone) forfeits the event
        // rather than propagating the panic into instrumented hot paths.
        let Ok(mut ring) = self.state.lock() else {
            return;
        };
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(event.clone());
    }
}

static FLIGHT: OnceLock<Arc<FlightRecorder>> = OnceLock::new();

/// Registers the process-wide flight recorder (done by [`crate::init_cli`]
/// when `MBR_FLIGHT_RECORDER` is set); later calls are ignored.
pub(crate) fn register(recorder: Arc<FlightRecorder>) {
    let _ = FLIGHT.set(recorder);
}

/// The process-wide flight recorder, if one was installed.
pub fn flight_recorder() -> Option<Arc<FlightRecorder>> {
    FLIGHT.get().cloned()
}

/// Dumps the process-wide flight recorder, if installed, to
/// `MBR_FLIGHT_RECORDER_OUT` (default `target/flight-recorder.jsonl`) and
/// reports the dump on stderr. Binaries call this on failure exits; the
/// panic hook installed by [`crate::init_cli`] calls it on panic. Returns
/// the dump path when a dump was written.
pub fn dump_flight_recorder(reason: &str) -> Option<PathBuf> {
    let recorder = FLIGHT.get()?;
    let path = std::env::var_os("MBR_FLIGHT_RECORDER_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/flight-recorder.jsonl"));
    match recorder.dump(&path) {
        Ok((kept, evicted)) => {
            eprintln!(
                "flight recorder: dumped {kept} events ({evicted} evicted) to {} ({reason})",
                path.display()
            );
            Some(path)
        }
        Err(e) => {
            eprintln!("flight recorder: failed to dump to {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Counter;
    use crate::trace::validate_trace_truncated;
    use crate::{counter, with_sink, MockClock, Span};

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mbr-flight-{}-{name}", std::process::id()))
    }

    #[test]
    fn ring_retains_the_newest_events_and_counts_evictions() {
        let rec = Arc::new(FlightRecorder::new(3));
        with_sink(rec.clone(), || {
            for i in 1..=5 {
                counter(Counter::SimplexPivots, i);
            }
        });
        assert_eq!(rec.evicted(), 2);
        let values: Vec<u64> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Counter { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(values, [3, 4, 5]);
    }

    #[test]
    fn truncated_dump_validates_in_truncated_mode() {
        // A ring too small for the whole run: the root span's close event
        // survives but early children are evicted, and with a mid-run
        // dump, open spans dangle. Both shapes must validate as truncated.
        let rec = Arc::new(FlightRecorder::new(4));
        crate::with_clock(Arc::new(MockClock::new(5)), || {
            with_sink(rec.clone(), || {
                let root = Span::enter("test.flight");
                for i in 1..=6 {
                    let inner = Span::enter("test.flight.step");
                    counter(Counter::SetPartNodesExplored, i);
                    drop(inner);
                }
                drop(root);
            })
        });
        assert!(rec.evicted() > 0);
        let events = rec.events();
        // Retained children reference the root whose close event is the
        // newest entry, so it survives; the counters' span refs point at
        // retained spans too — but earlier siblings are gone, making the
        // trace invalid under strict validation (close-order gaps are
        // fine, missing references are what truncation produces). Verify
        // via the dump-file round trip.
        let path = temp_path("ring.jsonl");
        rec.dump(&path).expect("dump");
        let text = std::fs::read_to_string(&path).expect("read dump");
        let parsed = crate::parse_trace(&text).expect("parse dump");
        assert_eq!(parsed, events);
        validate_trace_truncated(&parsed).expect("truncated dump validates");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dump_with_dangling_open_spans_is_truncated_valid() {
        // Simulate a panic-time dump: the enclosing span never closes, so
        // its children reference a span absent from the dump.
        let rec = Arc::new(FlightRecorder::new(16));
        crate::with_clock(Arc::new(MockClock::new(3)), || {
            with_sink(rec.clone(), || {
                let outer = Span::enter("test.open");
                drop(Span::enter("test.open.child"));
                counter(Counter::SimplexPivots, 2);
                // Dump before `outer` closes.
                let path = temp_path("open.jsonl");
                rec.dump(&path).expect("dump");
                let parsed = crate::parse_trace(&std::fs::read_to_string(&path).expect("read"))
                    .expect("parse");
                assert!(
                    crate::validate_trace(&parsed).is_err(),
                    "strict mode must reject the dangling parent"
                );
                validate_trace_truncated(&parsed).expect("truncated accepts");
                std::fs::remove_file(&path).ok();
                drop(outer);
            })
        });
    }
}
