//! Perf diffing: compare two traces or two `BENCH_*.json` files, and gate
//! counters against a committed `PERF_baseline.json` (DESIGN.md §13).
//!
//! The tolerance policy follows the determinism contract:
//!
//! * **counters** and **non-timing histograms** are algorithmic quantities
//!   — thread-count-invariant and identical between same-seed runs — so
//!   any difference is a *failure*;
//! * **timing histograms** have deterministic observation *counts* (one
//!   per solve) but wall-clock values, so counts must match exactly while
//!   quantile shifts beyond the relative tolerance are *advisory flags*;
//! * **span timings** are advisory: shifts beyond tolerance are flagged,
//!   never failed, because wall-clock noise between CI hosts would make a
//!   hard gate flaky. Structural span-count differences are flagged too.
//!
//! The baseline gate ratchets counters: a counter above its committed
//! baseline value fails the build; improvements and new counters are
//! reported with a hint to refresh via `mbr-perfdiff --write-baseline`.

use std::collections::{BTreeMap, BTreeSet};

use crate::catalog::Histogram;
use crate::hist::HistogramData;
use crate::summary::Summary;

/// The outcome of one diff: human-readable lines plus severity tallies.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Report lines, in emission order.
    pub lines: Vec<String>,
    /// Hard failures: exact-class mismatches or baseline regressions.
    pub failures: usize,
    /// Advisory flags: timing shifts beyond tolerance, structure drift.
    pub flags: usize,
}

impl DiffReport {
    fn fail(&mut self, line: String) {
        self.failures += 1;
        self.lines.push(format!("FAIL  {line}"));
    }

    fn flag(&mut self, line: String) {
        self.flags += 1;
        self.lines.push(format!("note  {line}"));
    }

    /// Whether the diff found no hard failures.
    pub fn is_clean(&self) -> bool {
        self.failures == 0
    }

    /// The report text: every line plus a one-line verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "perfdiff: {} failure(s), {} advisory flag(s)\n",
            self.failures, self.flags
        ));
        out
    }
}

/// Relative difference in percent, against the larger magnitude.
fn rel_pct(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        100.0 * (a - b).abs() / denom
    }
}

fn diff_counter_maps(
    what: &str,
    a: &BTreeMap<String, u64>,
    b: &BTreeMap<String, u64>,
    report: &mut DiffReport,
) {
    let names: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for name in names {
        match (a.get(name), b.get(name)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(x), Some(y)) => report.fail(format!("{what} {name}: {x} != {y}")),
            (Some(x), None) => report.fail(format!("{what} {name}: only in A (value {x})")),
            (None, Some(y)) => report.fail(format!("{what} {name}: only in B (value {y})")),
            (None, None) => unreachable!("name from union"),
        }
    }
}

/// Appends a bucket-by-bucket shift description for two histograms.
fn hist_shift_lines(name: &str, a: &HistogramData, b: &HistogramData, report: &mut DiffReport) {
    let buckets_a: BTreeMap<u32, u64> = a.buckets().collect();
    let buckets_b: BTreeMap<u32, u64> = b.buckets().collect();
    let indices: BTreeSet<u32> = buckets_a.keys().chain(buckets_b.keys()).copied().collect();
    for index in indices {
        let x = buckets_a.get(&index).copied().unwrap_or(0);
        let y = buckets_b.get(&index).copied().unwrap_or(0);
        if x != y {
            report
                .lines
                .push(format!("      {name} bucket {index}: {x} -> {y}"));
        }
    }
}

/// Diffs two trace summaries (see the module docs for the severity of
/// each section). `tolerance_pct` governs the advisory timing checks.
pub fn diff_traces(a: &Summary, b: &Summary, tolerance_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    diff_counter_maps("counter", &a.counters, &b.counters, &mut report);

    let hist_names: BTreeSet<&String> = a.hists.keys().chain(b.hists.keys()).collect();
    for name in hist_names {
        let timing = Histogram::from_name(name).is_some_and(Histogram::is_timing);
        match (a.hists.get(name), b.hists.get(name)) {
            (Some(x), Some(y)) if !timing => {
                if x != y {
                    report.fail(format!(
                        "histogram {name}: distributions differ (count {} vs {})",
                        x.count(),
                        y.count()
                    ));
                    hist_shift_lines(name, x, y, &mut report);
                }
            }
            (Some(x), Some(y)) => {
                // Timing histogram: the observation count is algorithmic,
                // the values are wall-clock.
                if x.count() != y.count() {
                    report.fail(format!(
                        "timing histogram {name}: observation count {} != {}",
                        x.count(),
                        y.count()
                    ));
                }
                for (q, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
                    let (qx, qy) = (x.quantile(q), y.quantile(q));
                    let shift = rel_pct(qx as f64, qy as f64);
                    if shift > tolerance_pct {
                        report.flag(format!(
                            "timing histogram {name} {label}: {qx}ns -> {qy}ns ({shift:.1}% shift)"
                        ));
                    }
                }
            }
            (Some(_), None) => report.fail(format!("histogram {name}: only in A")),
            (None, Some(_)) => report.fail(format!("histogram {name}: only in B")),
            (None, None) => unreachable!("name from union"),
        }
    }

    let span_names: BTreeSet<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    for name in span_names {
        let (ca, ta) = a.spans.get(name).copied().unwrap_or((0, 0));
        let (cb, tb) = b.spans.get(name).copied().unwrap_or((0, 0));
        if ca != cb {
            report.flag(format!("span {name}: entered {ca} vs {cb} times"));
        }
        let shift = rel_pct(ta as f64, tb as f64);
        if ca == cb && shift > tolerance_pct {
            report.flag(format!(
                "span {name}: total {ta}ns -> {tb}ns ({shift:.1}% shift)"
            ));
        }
    }
    report
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser for the bench/baseline files the
// workspace itself emits (objects, arrays, strings, numbers, null).
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the perf pipeline emits).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    UInt(u64),
    Float(f64),
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&mut self) -> Option<u8> {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("dangling escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let Some(c) = s.chars().next() else {
                        return Err("invalid utf-8".to_string());
                    };
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = self.parse_string()?;
                    self.consume(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while let Some(&c) = self.bytes.get(self.pos) {
                    if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in number".to_string())?;
                if let Ok(v) = text.parse::<u64>() {
                    Ok(Json::UInt(v))
                } else {
                    text.parse::<f64>()
                        .map(Json::Float)
                        .map_err(|_| format!("bad number '{text}'"))
                }
            }
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn parse_document(&mut self) -> Result<Json, String> {
        let value = self.parse_value()?;
        if self.peek().is_some() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Bench files.
// ---------------------------------------------------------------------------

/// One measurement from a `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Benchmark case name.
    pub name: String,
    /// Median wall-clock per iteration, nanoseconds.
    pub median_ns: u64,
    /// Counter totals observed during one measured pass.
    pub counters: BTreeMap<String, u64>,
}

/// A parsed `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    /// Suite name.
    pub suite: String,
    /// Results, in file order.
    pub results: Vec<BenchResult>,
}

/// Parses the bench JSON the testkit suite writer emits.
pub fn parse_bench(text: &str) -> Result<BenchFile, String> {
    let doc = JsonParser::new(text).parse_document()?;
    let suite = doc
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("missing 'suite'")?
        .to_string();
    let Some(Json::Arr(results)) = doc.get("results") else {
        return Err("missing 'results' array".to_string());
    };
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .ok_or("result missing 'name'")?
            .to_string();
        let median_ns = r
            .get("median_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("result '{name}' missing 'median_ns'"))?;
        let mut counters = BTreeMap::new();
        if let Some(Json::Obj(fields)) = r.get("counters") {
            for (k, v) in fields {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("counter '{k}' is not an unsigned integer"))?;
                counters.insert(k.clone(), v);
            }
        }
        out.push(BenchResult {
            name,
            median_ns,
            counters,
        });
    }
    Ok(BenchFile {
        suite,
        results: out,
    })
}

/// Diffs two bench files: counters exactly, medians with tolerance.
pub fn diff_bench(a: &BenchFile, b: &BenchFile, tolerance_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    if a.suite != b.suite {
        report.flag(format!("suite name: '{}' vs '{}'", a.suite, b.suite));
    }
    let index = |f: &BenchFile| -> BTreeMap<String, BenchResult> {
        f.results
            .iter()
            .map(|r| (r.name.clone(), r.clone()))
            .collect()
    };
    let (ia, ib) = (index(a), index(b));
    let names: BTreeSet<&String> = ia.keys().chain(ib.keys()).collect();
    for name in names {
        match (ia.get(name), ib.get(name)) {
            (Some(x), Some(y)) => {
                diff_counter_maps(
                    &format!("bench {name}:"),
                    &x.counters,
                    &y.counters,
                    &mut report,
                );
                let shift = rel_pct(x.median_ns as f64, y.median_ns as f64);
                if shift > tolerance_pct {
                    report.flag(format!(
                        "bench {name}: median {}ns -> {}ns ({shift:.1}% shift)",
                        x.median_ns, y.median_ns
                    ));
                }
            }
            (Some(_), None) => report.fail(format!("bench {name}: only in A")),
            (None, Some(_)) => report.fail(format!("bench {name}: only in B")),
            (None, None) => unreachable!("name from union"),
        }
    }
    report
}

// ---------------------------------------------------------------------------
// The committed baseline.
// ---------------------------------------------------------------------------

/// The committed `PERF_baseline.json`: the counter totals of a reference
/// deterministic run (the tier-1 `check -- d1` trace).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Where the baseline numbers came from (free-form provenance note).
    pub source: String,
    /// Counter name → committed total.
    pub counters: BTreeMap<String, u64>,
}

/// Parses a `PERF_baseline.json` document.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = JsonParser::new(text).parse_document()?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or("missing 'schema'")?;
    if schema != 1 {
        return Err(format!("unsupported baseline schema {schema}"));
    }
    let source = doc
        .get("source")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let Some(Json::Obj(fields)) = doc.get("counters") else {
        return Err("missing 'counters' object".to_string());
    };
    let mut counters = BTreeMap::new();
    for (k, v) in fields {
        let v = v
            .as_u64()
            .ok_or_else(|| format!("counter '{k}' is not an unsigned integer"))?;
        counters.insert(k.clone(), v);
    }
    Ok(Baseline { source, counters })
}

/// Serialises a baseline deterministically (sorted counters, fixed
/// layout, trailing newline) so regeneration produces minimal diffs.
pub fn render_baseline(baseline: &Baseline) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"source\": \"");
    for c in baseline.source.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push_str("\",\n  \"counters\": {");
    for (i, (name, value)) in baseline.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {value}"));
    }
    if baseline.counters.is_empty() {
        out.push_str("}\n}\n");
    } else {
        out.push_str("\n  }\n}\n");
    }
    out
}

/// Gates current counter totals against the committed baseline: any
/// counter above its baseline value is a failure (the build gate);
/// improvements, new counters and vanished counters are reported with a
/// refresh hint — vanished ones as failures, since losing a counter means
/// losing regression coverage.
pub fn diff_against_baseline(baseline: &Baseline, current: &BTreeMap<String, u64>) -> DiffReport {
    let mut report = DiffReport::default();
    let names: BTreeSet<&String> = baseline.counters.keys().chain(current.keys()).collect();
    for name in names {
        match (baseline.counters.get(name), current.get(name)) {
            (Some(base), Some(now)) if now > base => {
                let pct = rel_pct(*base as f64, *now as f64);
                report.fail(format!(
                    "counter {name} regressed: baseline {base} -> {now} (+{pct:.1}%)"
                ));
            }
            (Some(base), Some(now)) if now < base => {
                report.flag(format!(
                    "counter {name} improved: baseline {base} -> {now}; refresh with --write-baseline"
                ));
            }
            (Some(_), Some(_)) => {}
            (Some(base), None) => {
                report.fail(format!(
                    "counter {name} vanished (baseline {base}); refresh with --write-baseline if intended"
                ));
            }
            (None, Some(now)) => {
                report.flag(format!(
                    "new counter {name} (value {now}) not in baseline; add with --write-baseline"
                ));
            }
            (None, None) => unreachable!("name from union"),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn counter_event(name: &str, value: u64) -> TraceEvent {
        TraceEvent::Counter {
            name: name.to_string(),
            value,
            span: None,
            pass: None,
        }
    }

    fn hist_event(name: &str, values: &[u64]) -> TraceEvent {
        let mut data = HistogramData::new();
        for &v in values {
            data.record(v);
        }
        TraceEvent::Hist {
            name: name.to_string(),
            data,
            span: None,
            pass: None,
        }
    }

    #[test]
    fn identical_traces_diff_clean() {
        let events = vec![
            counter_event("lp.simplex.pivots", 5),
            hist_event("lp.setpart.solve_nodes", &[1, 9, 40]),
            hist_event("lp.setpart.solve_ns", &[100, 220]),
        ];
        let s = Summary::from_events(&events);
        let report = diff_traces(&s, &s, 10.0);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.flags, 0, "{}", report.render());
    }

    #[test]
    fn counter_and_histogram_differences_fail() {
        let a = Summary::from_events(&[
            counter_event("lp.simplex.pivots", 5),
            hist_event("lp.setpart.solve_nodes", &[1, 9]),
        ]);
        let b = Summary::from_events(&[
            counter_event("lp.simplex.pivots", 6),
            hist_event("lp.setpart.solve_nodes", &[1, 12]),
        ]);
        let report = diff_traces(&a, &b, 10.0);
        assert_eq!(report.failures, 2, "{}", report.render());
        let text = report.render();
        assert!(text.contains("counter lp.simplex.pivots: 5 != 6"), "{text}");
        assert!(text.contains("distributions differ"), "{text}");
        assert!(text.contains("bucket"), "shift report expected: {text}");
    }

    #[test]
    fn timing_histograms_shift_advisory_but_count_exact() {
        // Same observation counts, very different values: advisory only.
        let a = Summary::from_events(&[hist_event("lp.setpart.solve_ns", &[100, 200])]);
        let b = Summary::from_events(&[hist_event("lp.setpart.solve_ns", &[1_000, 2_000])]);
        let report = diff_traces(&a, &b, 10.0);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.flags > 0, "{}", report.render());
        // Different observation counts: the algorithmic part regressed.
        let c = Summary::from_events(&[hist_event("lp.setpart.solve_ns", &[100, 200, 300])]);
        let report = diff_traces(&a, &c, 10.0);
        assert_eq!(report.failures, 1, "{}", report.render());
    }

    #[test]
    fn span_drift_is_advisory() {
        let mk = |dur: u64| {
            Summary::from_events(&[TraceEvent::Span {
                id: 1,
                parent: None,
                name: "flow.compose".to_string(),
                start_ns: 0,
                dur_ns: dur,
                task: None,
                pass: None,
            }])
        };
        let report = diff_traces(&mk(100), &mk(300), 10.0);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.flags, 1, "{}", report.render());
    }

    const BENCH_A: &str = r#"{
      "suite": "par",
      "unit": "ns",
      "results": [
        {"name": "d1", "samples": 5, "median_ns": 1000, "mean_ns": 1100,
         "min_ns": 900, "max_ns": 1300,
         "counters": {"lp.simplex.pivots": 42}}
      ]
    }"#;

    #[test]
    fn bench_files_parse_and_diff() {
        let a = parse_bench(BENCH_A).expect("parse");
        assert_eq!(a.suite, "par");
        assert_eq!(a.results.len(), 1);
        assert_eq!(a.results[0].median_ns, 1000);
        assert_eq!(a.results[0].counters.get("lp.simplex.pivots"), Some(&42));
        // Identical: clean.
        assert!(diff_bench(&a, &a, 10.0).is_clean());
        // Counter drift: failure. Median drift: advisory.
        let b_text = BENCH_A.replace("42", "43").replace("1000", "2000");
        let b = parse_bench(&b_text).expect("parse");
        let report = diff_bench(&a, &b, 10.0);
        assert_eq!(report.failures, 1, "{}", report.render());
        assert!(report.flags >= 1, "{}", report.render());
    }

    #[test]
    fn baseline_round_trips_and_gates() {
        let baseline = Baseline {
            source: "check -- d1".to_string(),
            counters: BTreeMap::from([
                ("lp.simplex.pivots".to_string(), 100),
                ("lp.setpart.solves".to_string(), 7),
            ]),
        };
        let text = render_baseline(&baseline);
        assert_eq!(parse_baseline(&text).expect("parse"), baseline);
        // Regression fails; improvement and new counters advise.
        let current = BTreeMap::from([
            ("lp.simplex.pivots".to_string(), 120),
            ("lp.setpart.solves".to_string(), 6),
            ("sta.full_analyses".to_string(), 1),
        ]);
        let report = diff_against_baseline(&baseline, &current);
        assert_eq!(report.failures, 1, "{}", report.render());
        assert_eq!(report.flags, 2, "{}", report.render());
        assert!(report.render().contains("regressed"), "{}", report.render());
        // A vanished counter is a failure (lost coverage).
        let report = diff_against_baseline(&baseline, &BTreeMap::new());
        assert_eq!(report.failures, 2, "{}", report.render());
        // Matching totals gate clean.
        let report = diff_against_baseline(&baseline, &baseline.counters);
        assert!(
            report.is_clean() && report.flags == 0,
            "{}",
            report.render()
        );
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        assert!(parse_baseline("{").is_err());
        assert!(parse_baseline("{\"schema\": 2, \"counters\": {}}").is_err());
        assert!(parse_baseline("{\"schema\": 1}").is_err());
        assert!(parse_bench("{\"suite\": \"x\"}").is_err());
        assert!(JsonParser::new("{} trailing").parse_document().is_err());
        assert!(JsonParser::new("[1, 2,]").parse_document().is_err());
    }
}
