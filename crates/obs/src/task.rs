//! Cross-thread observability: capture a worker task's events, replay them
//! on the caller.
//!
//! Spans, counters and gauges dispatch through *thread-local* state (the
//! sink installed by [`crate::with_sink`], the span stack, the clock
//! override), none of which a scoped worker thread inherits. Worse, span
//! ids are allocated per thread starting at 1, so two workers emitting
//! directly into a process-global sink would collide — and the interleaving
//! would differ run to run, destroying trace determinism.
//!
//! The [`SpanHandle`]/[`TaskObs`] pair solves both problems with
//! buffer-and-replay:
//!
//! 1. On the orchestrating thread, take a [`SpanHandle`] from the span the
//!    tasks should nest under (or [`SpanHandle::current`]). The handle
//!    freezes three thread-local facts: the parent span id, whether any
//!    sink is listening, and the clock override (so a `MockClock` governs
//!    workers too).
//! 2. In each worker, run the task under [`TaskObs::capture`]. When no
//!    sink was active the closure runs bare — the no-observability case
//!    stays free. Otherwise the task's events land in a private buffer,
//!    with span ids numbered locally from 1 (deterministic per task).
//! 3. Back on the orchestrating thread, call [`TaskObs::replay`] on each
//!    buffer **in task order**. Replay allocates a fresh id block from the
//!    replaying thread, remaps the task's local ids into it, re-parents
//!    the task's root spans onto the handle's span, tags every span with a
//!    task group id, and re-emits.
//!
//! Because the replay order is the task order — not the completion order —
//! the final event stream is identical at every thread count, and under a
//! mock clock it is byte-identical.

use std::sync::Arc;

use crate::clock::{self, Clock};
use crate::sink::{self, Recorder};
use crate::span::{self, Span};
use crate::trace::TraceEvent;

/// A frozen reference to the observability context of the thread that
/// created it: attachment point for worker-task events. Cheap to create
/// and to share (`&SpanHandle` is `Send + Sync`).
#[derive(Clone)]
pub struct SpanHandle {
    /// Span the task's root spans re-parent onto at replay.
    parent: Option<u64>,
    /// Whether any sink was listening when the handle was taken; when
    /// false, capture runs the task bare and replay is a no-op.
    active: bool,
    /// The creating thread's clock override, handed to workers so mock
    /// time governs the whole parallel section.
    clock: Option<Arc<dyn Clock>>,
}

impl SpanHandle {
    /// A handle attaching tasks under the innermost open span of the
    /// calling thread (or at top level when none is open).
    pub fn current() -> SpanHandle {
        SpanHandle {
            parent: span::current_span_id(),
            active: sink::installed(),
            clock: clock::current(),
        }
    }

    /// Whether captured tasks will record anything. When false,
    /// [`TaskObs::capture`] adds no overhead beyond the branch.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Opens a span on the current (worker) thread that will nest under
    /// this handle's parent span once its task buffer is replayed. Inside
    /// a [`TaskObs::capture`] scope this is just [`Span::enter`] — the
    /// re-parenting happens at replay — but going through the handle keeps
    /// the attachment explicit at the call site.
    pub fn attach(&self, name: &'static str) -> Span {
        Span::enter(name)
    }
}

impl std::fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanHandle")
            .field("parent", &self.parent)
            .field("active", &self.active)
            .field("has_clock", &self.clock.is_some())
            .finish()
    }
}

/// The buffered observability events of one worker task, produced by
/// [`TaskObs::capture`] and consumed by [`TaskObs::replay`].
#[derive(Debug, Default)]
#[must_use = "captured events are lost unless replayed on the orchestrating thread"]
pub struct TaskObs {
    events: Vec<TraceEvent>,
}

impl TaskObs {
    /// Runs `f` — typically on a worker thread — capturing every event it
    /// emits into the returned buffer. Span ids inside the buffer restart
    /// at 1, so a given task always buffers identically regardless of
    /// which worker ran it. The handle's clock override, if any, is
    /// installed for the duration.
    ///
    /// When the handle is inactive (no sink was listening), `f` runs with
    /// this thread's observability state untouched and the buffer stays
    /// empty.
    pub fn capture<R>(handle: &SpanHandle, f: impl FnOnce() -> R) -> (R, TaskObs) {
        if !handle.active {
            return (f(), TaskObs::default());
        }
        let recorder = Arc::new(Recorder::default());
        let run = || sink::with_sink(recorder.clone(), f);
        let result = match &handle.clock {
            Some(c) => clock::with_clock(c.clone(), run),
            None => run(),
        };
        (
            result,
            TaskObs {
                events: recorder.take(),
            },
        )
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-emits the buffered events on the calling thread — the events
    /// reach whatever sink is active *here*, in buffer order.
    ///
    /// Remapping: a block of `max_local_id + 1` span ids is reserved from
    /// this thread's allocator; local span id `i` becomes `base + i`, the
    /// task's root spans (and span-less counters/gauges) re-parent onto
    /// `handle`'s span, and spans are tagged with a task group id (`base`
    /// for the task's own thread; nested tasks replayed inside it keep
    /// their relative group ids, shifted into the block). Call in task
    /// order to keep the merged trace deterministic.
    pub fn replay(self, handle: &SpanHandle) {
        if self.events.is_empty() || !sink::installed() {
            return;
        }
        let max_local = self
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { id, .. } => Some(*id),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let base = span::allocate_ids(max_local + 1);
        let remap = |id: u64| base + id;
        let remap_parent = |p: Option<u64>| match p {
            Some(p) => Some(remap(p)),
            None => handle.parent,
        };
        // Workers do not inherit the orchestrating thread's pass scope, so
        // untagged captured events are stamped with the pass in effect on
        // the replaying thread; an explicit tag (a nested replay done
        // inside a worker's own pass scope) wins.
        let stamp = |pass: Option<u64>| pass.or_else(crate::pass::current_pass);
        for event in self.events {
            let remapped = match event {
                TraceEvent::Span {
                    id,
                    parent,
                    name,
                    start_ns,
                    dur_ns,
                    task,
                    pass,
                } => TraceEvent::Span {
                    id: remap(id),
                    parent: remap_parent(parent),
                    name,
                    start_ns,
                    dur_ns,
                    task: Some(match task {
                        Some(t) => remap(t),
                        None => base,
                    }),
                    pass: stamp(pass),
                },
                TraceEvent::Counter {
                    name,
                    value,
                    span,
                    pass,
                } => TraceEvent::Counter {
                    name,
                    value,
                    span: remap_parent(span),
                    pass: stamp(pass),
                },
                TraceEvent::Gauge {
                    name,
                    value,
                    span,
                    pass,
                } => TraceEvent::Gauge {
                    name,
                    value,
                    span: remap_parent(span),
                    pass: stamp(pass),
                },
                TraceEvent::Hist {
                    name,
                    data,
                    span,
                    pass,
                } => TraceEvent::Hist {
                    name,
                    data,
                    span: remap_parent(span),
                    pass: stamp(pass),
                },
            };
            sink::emit(&remapped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Counter, Gauge};
    use crate::clock::MockClock;
    use crate::trace::validate_trace;
    use crate::{counter, gauge, with_clock, with_sink};

    #[test]
    fn inactive_handle_captures_nothing() {
        // No sink installed on this thread: the closure must run bare.
        let handle = SpanHandle::current();
        assert!(!handle.is_active());
        let (value, obs) = TaskObs::capture(&handle, || 41 + 1);
        assert_eq!(value, 42);
        assert!(obs.is_empty());
        obs.replay(&handle); // must be a no-op, not a panic
    }

    #[test]
    fn worker_spans_nest_under_the_handles_span() {
        let rec = Arc::new(Recorder::default());
        with_clock(Arc::new(MockClock::new(10)), || {
            with_sink(rec.clone(), || {
                let outer = Span::enter("test.outer");
                let handle = SpanHandle::current();
                let buffers: Vec<TaskObs> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..2)
                        .map(|i| {
                            let handle = &handle;
                            s.spawn(move || {
                                let ((), obs) = TaskObs::capture(handle, || {
                                    let span = handle.attach("test.task");
                                    counter(Counter::SimplexPivots, i + 1);
                                    drop(span);
                                });
                                obs
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for b in buffers {
                    b.replay(&handle);
                }
                drop(outer);
            })
        });
        let events = rec.events();
        validate_trace(&events).expect("replayed trace validates");
        // Expect: task-1 span + counter, task-2 span + counter, outer span.
        let spans: Vec<(u64, Option<u64>, Option<u64>)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span {
                    id, parent, task, ..
                } => Some((*id, *parent, *task)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 3);
        let outer_id = spans[2].0;
        assert_eq!(spans[2].1, None);
        assert_eq!(spans[2].2, None, "directly emitted spans are untagged");
        for &(id, parent, task) in &spans[..2] {
            assert_eq!(parent, Some(outer_id), "task roots re-parent");
            assert!(task.is_some(), "replayed spans carry a task group");
            assert_ne!(Some(id), task.map(|_| outer_id));
        }
        // Ids are unique and the two tasks got distinct groups.
        assert_ne!(spans[0].0, spans[1].0);
        assert_ne!(spans[0].2, spans[1].2);
    }

    #[test]
    fn replay_is_deterministic_in_task_order() {
        // Whatever order tasks *complete* in, replaying buffers in task
        // order produces one fixed event stream under a mock clock.
        let run = || {
            let rec = Arc::new(Recorder::default());
            with_clock(Arc::new(MockClock::new(7)), || {
                with_sink(rec.clone(), || {
                    let root = Span::enter("test.root");
                    let handle = SpanHandle::current();
                    let mut buffers: Vec<Option<TaskObs>> = (0..4).map(|_| None).collect();
                    std::thread::scope(|s| {
                        let mut js = Vec::new();
                        for i in 0..4u64 {
                            let handle = &handle;
                            js.push(s.spawn(move || {
                                TaskObs::capture(handle, || {
                                    let span = handle.attach("test.work");
                                    counter(Counter::SetPartNodesExplored, i + 1);
                                    gauge(Gauge::WnsPs, i as f64);
                                    drop(span);
                                })
                                .1
                            }));
                        }
                        for (i, j) in js.into_iter().enumerate() {
                            buffers[i] = Some(j.join().unwrap());
                        }
                    });
                    for b in buffers.into_iter().flatten() {
                        b.replay(&handle);
                    }
                    drop(root);
                })
            });
            crate::to_jsonl(&rec.events())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "replayed traces must be byte-identical");
        validate_trace(&crate::parse_trace(&a).expect("parse")).expect("valid");
    }

    #[test]
    fn nested_capture_replays_through_two_levels() {
        // A task that itself fans out: the inner buffers are replayed
        // inside the outer capture, then the outer buffer on the caller.
        let rec = Arc::new(Recorder::default());
        with_clock(Arc::new(MockClock::new(3)), || {
            with_sink(rec.clone(), || {
                let root = Span::enter("test.root");
                let outer_handle = SpanHandle::current();
                let ((), outer) = TaskObs::capture(&outer_handle, || {
                    let arm = outer_handle.attach("test.arm");
                    let inner_handle = SpanHandle::current();
                    let inner: Vec<TaskObs> = std::thread::scope(|s| {
                        let ih = &inner_handle;
                        let js: Vec<_> = (0..2)
                            .map(|_| {
                                s.spawn(move || {
                                    TaskObs::capture(ih, || {
                                        drop(ih.attach("test.leaf"));
                                    })
                                    .1
                                })
                            })
                            .collect();
                        js.into_iter().map(|j| j.join().unwrap()).collect()
                    });
                    for b in inner {
                        b.replay(&inner_handle);
                    }
                    drop(arm);
                });
                outer.replay(&outer_handle);
                drop(root);
            })
        });
        let events = rec.events();
        validate_trace(&events).expect("two-level replay validates");
        let leaves: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span { name, .. } if name == "test.leaf"))
            .collect();
        assert_eq!(leaves.len(), 2);
        // Both leaves are parented on the arm span (transitively remapped).
        let arm_id = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Span { id, name, .. } if name == "test.arm" => Some(*id),
                _ => None,
            })
            .expect("arm span present");
        for leaf in leaves {
            let TraceEvent::Span { parent, task, .. } = leaf else {
                unreachable!()
            };
            assert_eq!(*parent, Some(arm_id));
            assert!(task.is_some());
        }
    }

    #[test]
    fn replay_stamps_worker_events_with_the_replaying_pass() {
        // Workers don't inherit the orchestrator's pass scope, so the tag
        // is applied at replay time.
        let rec = Arc::new(Recorder::default());
        with_sink(rec.clone(), || {
            crate::with_pass(5, || {
                let handle = SpanHandle::current();
                let obs = std::thread::scope(|s| {
                    let h = &handle;
                    s.spawn(move || {
                        TaskObs::capture(h, || {
                            let span = h.attach("test.task");
                            counter(Counter::SimplexPivots, 1);
                            drop(span);
                        })
                        .1
                    })
                    .join()
                    .unwrap()
                });
                obs.replay(&handle);
            });
        });
        let events = rec.events();
        assert_eq!(events.len(), 2);
        for e in &events {
            let (TraceEvent::Span { pass, .. }
            | TraceEvent::Counter { pass, .. }
            | TraceEvent::Gauge { pass, .. }
            | TraceEvent::Hist { pass, .. }) = e;
            assert_eq!(*pass, Some(5));
        }
    }

    #[test]
    fn replay_remaps_histogram_span_references() {
        use crate::catalog::Histogram;
        let rec = Arc::new(Recorder::default());
        with_clock(Arc::new(MockClock::new(2)), || {
            with_sink(rec.clone(), || {
                let root = Span::enter("test.root");
                let handle = SpanHandle::current();
                let obs = std::thread::scope(|s| {
                    let h = &handle;
                    s.spawn(move || {
                        TaskObs::capture(h, || {
                            let span = h.attach("test.task");
                            crate::observe(Histogram::SetPartSolveNodes, 12);
                            drop(span);
                            // Span-less observation: re-parents onto root.
                            crate::observe(Histogram::StaSeedPinsPerUpdate, 3);
                        })
                        .1
                    })
                    .join()
                    .unwrap()
                });
                obs.replay(&handle);
                drop(root);
            })
        });
        let events = rec.events();
        validate_trace(&events).expect("replayed hist trace validates");
        let task_span_id = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Span { id, name, .. } if name == "test.task" => Some(*id),
                _ => None,
            })
            .expect("task span");
        let root_id = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Span { id, name, .. } if name == "test.root" => Some(*id),
                _ => None,
            })
            .expect("root span");
        let hist_spans: Vec<Option<u64>> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Hist { span, .. } => Some(*span),
                _ => None,
            })
            .collect();
        assert_eq!(hist_spans, [Some(task_span_id), Some(root_id)]);
    }

    #[test]
    fn mock_clock_round_trips_into_workers() {
        // The handle carries the clock override: worker readings come from
        // the same shared mock, so child windows sit inside the parent's.
        let rec = Arc::new(Recorder::default());
        with_clock(Arc::new(MockClock::new(5)), || {
            with_sink(rec.clone(), || {
                let root = Span::enter("test.root");
                let handle = SpanHandle::current();
                let obs = std::thread::scope(|s| {
                    let h = &handle;
                    s.spawn(move || TaskObs::capture(h, || drop(h.attach("test.timed"))).1)
                        .join()
                        .unwrap()
                });
                obs.replay(&handle);
                drop(root);
            })
        });
        let events = rec.events();
        validate_trace(&events).expect("valid");
        let (child_start, child_end) = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Span {
                    name,
                    start_ns,
                    dur_ns,
                    ..
                } if name == "test.timed" => Some((*start_ns, *start_ns + *dur_ns)),
                _ => None,
            })
            .expect("worker span recorded");
        let (root_start, root_end) = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Span {
                    name,
                    start_ns,
                    dur_ns,
                    ..
                } if name == "test.root" => Some((*start_ns, *start_ns + *dur_ns)),
                _ => None,
            })
            .expect("root span recorded");
        assert!(root_start <= child_start && child_end <= root_end);
        // Mock readings: root start 0; worker start/end 5/10; root end 15.
        assert_eq!(
            (root_start, child_start, child_end, root_end),
            (0, 5, 10, 15)
        );
    }
}
