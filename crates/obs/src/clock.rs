//! Injectable time source: monotonic nanoseconds in binaries, a
//! deterministic mock in tests.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be non-decreasing:
/// a later call never returns a smaller value than an earlier one.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_ns(&self) -> u64;
}

/// The process-wide real clock: nanoseconds since the first observation in
/// this process (so traces start near zero and `u64` never overflows).
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds lasts ~584 years of process uptime.
        anchor().elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests: every reading advances time by a fixed
/// step, so any fixed sequence of instrumented operations produces a
/// byte-identical trace on every run.
#[derive(Debug)]
pub struct MockClock {
    step_ns: u64,
    now: AtomicU64,
}

impl MockClock {
    /// A mock clock starting at 0 that advances `step_ns` per reading.
    pub fn new(step_ns: u64) -> Self {
        MockClock {
            step_ns,
            now: AtomicU64::new(0),
        }
    }

    /// Advances the clock by `ns` without producing a reading (models work
    /// happening between observations).
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step_ns, Ordering::Relaxed)
    }
}

thread_local! {
    static LOCAL_CLOCK: RefCell<Option<Arc<dyn Clock>>> = const { RefCell::new(None) };
}

/// The active clock's current reading: the thread-local override installed
/// by [`with_clock`] if any, else the process-wide [`MonotonicClock`].
pub fn now_ns() -> u64 {
    LOCAL_CLOCK.with(|c| match &*c.borrow() {
        Some(clock) => clock.now_ns(),
        None => MonotonicClock.now_ns(),
    })
}

/// The thread-local clock override installed by [`with_clock`], if any.
/// Used to hand the caller's time source to worker threads (see
/// `SpanHandle`), so a mock clock governs an entire parallel section.
pub(crate) fn current() -> Option<Arc<dyn Clock>> {
    LOCAL_CLOCK.with(|c| c.borrow().clone())
}

/// Runs `f` with `clock` as this thread's time source, restoring the
/// previous source afterwards (also on panic).
pub fn with_clock<R>(clock: Arc<dyn Clock>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn Clock>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            LOCAL_CLOCK.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = LOCAL_CLOCK.with(|c| c.borrow_mut().replace(clock));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_deterministic_and_scoped() {
        let readings = with_clock(Arc::new(MockClock::new(10)), || {
            [now_ns(), now_ns(), now_ns()]
        });
        assert_eq!(readings, [0, 10, 20]);
        // Outside the scope the real clock is back (values far above 20 are
        // not guaranteed, but determinism of the mock must not leak).
        let again = with_clock(Arc::new(MockClock::new(10)), now_ns);
        assert_eq!(again, 0);
    }

    #[test]
    fn mock_clock_advance_skips_time() {
        let mock = MockClock::new(1);
        assert_eq!(mock.now_ns(), 0);
        mock.advance(100);
        assert_eq!(mock.now_ns(), 101);
    }
}
