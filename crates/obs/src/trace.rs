//! The JSONL trace format: emit, parse, validate.
//!
//! A trace is a sequence of newline-terminated JSON objects, one per
//! event, in emission order. Field order is fixed so a deterministic run
//! produces a byte-identical file. Four event shapes exist:
//!
//! ```text
//! {"type":"span","id":3,"parent":1,"name":"flow.compose.timing","start_ns":120,"dur_ns":480}
//! {"type":"counter","name":"lp.simplex.pivots","value":42,"span":3}
//! {"type":"gauge","name":"sta.wns_ps","value":-12.5,"span":null}
//! {"type":"hist","name":"lp.setpart.solve_nodes","count":3,"sum":10,"min":1,"max":7,"buckets":[[1,1],[4,2]],"span":3}
//! ```
//!
//! * `span` — emitted when the span **closes**; `parent` is the id of the
//!   enclosing span or `null`. Ids are unique per trace, allocated in
//!   entry order starting at 1, so emission order is close order. Spans
//!   replayed from a worker task additionally carry a `task` group id
//!   (`{"type":"span",...,"dur_ns":480,"task":17}`): close order is
//!   guaranteed only *within* one task group (and within the untagged
//!   main-thread group), because independent tasks overlap in time. The
//!   field is omitted — not `null` — when absent, so single-threaded
//!   traces are byte-identical to the pre-parallel format.
//! * `counter` — an accumulated total flushed by one operation; `span` is
//!   the innermost open span at flush time or `null`. `name` must be in
//!   the [`Counter`] catalog.
//! * `gauge` — a point-in-time value; same `span` rule, `name` from the
//!   [`Gauge`] catalog. `value` is finite and rendered with a decimal
//!   point (`17` serialises as `17.0`) so the shapes stay distinguishable.
//! * `hist` — a flushed [`HistogramData`] distribution; same `span` rule,
//!   `name` from the [`Histogram`] catalog. `buckets` is the sparse
//!   `[index, count]` list in ascending index order (DESIGN.md §13);
//!   empty histograms are dropped at the flush site, so `count` is
//!   positive in any valid trace.
//!
//! Validation has two modes: [`validate_trace`] enforces the full schema,
//! while [`validate_trace_truncated`] additionally accepts the dumps a
//! bounded flight recorder produces — the trace may begin mid-run, so
//! references to spans evicted from the ring buffer (or still open at the
//! time of the dump) are allowed to dangle.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::catalog::{Counter, Gauge, Histogram};
use crate::hist::HistogramData;
use crate::sink::ObsSink;

/// One trace event. The enum mirrors the wire shapes above.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A closed timing span.
    Span {
        /// Unique per-trace id, allocated in entry order from 1.
        id: u64,
        /// Id of the enclosing span, if the span was nested.
        parent: Option<u64>,
        /// Dotted taxonomy name (DESIGN.md §8).
        name: String,
        /// Clock reading at entry, nanoseconds.
        start_ns: u64,
        /// Entry-to-close duration, nanoseconds.
        dur_ns: u64,
        /// Task group for spans replayed from a worker task ([`crate::TaskObs`]);
        /// `None` for spans emitted directly on the recording thread.
        task: Option<u64>,
        /// Composition pass the span belongs to ([`crate::with_pass`]);
        /// `None` outside any pass scope.
        pass: Option<u64>,
    },
    /// A flushed counter total.
    Counter {
        /// Catalog name ([`Counter::name`]).
        name: String,
        /// The flushed (positive) total.
        value: u64,
        /// Innermost open span at flush time, if any.
        span: Option<u64>,
        /// Composition pass the flush belongs to ([`crate::with_pass`]).
        pass: Option<u64>,
    },
    /// A measured point-in-time value.
    Gauge {
        /// Catalog name ([`Gauge::name`]).
        name: String,
        /// The measured value (finite).
        value: f64,
        /// Innermost open span at flush time, if any.
        span: Option<u64>,
        /// Composition pass the measurement belongs to ([`crate::with_pass`]).
        pass: Option<u64>,
    },
    /// A flushed distribution of per-operation observations.
    Hist {
        /// Catalog name ([`Histogram::name`]).
        name: String,
        /// The bucketed distribution (nonempty in any valid trace).
        data: HistogramData,
        /// Innermost open span at flush time, if any.
        span: Option<u64>,
        /// Composition pass the flush belongs to ([`crate::with_pass`]).
        pass: Option<u64>,
    },
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => out.push_str(&v.to_string()),
        None => out.push_str("null"),
    }
}

fn write_f64(out: &mut String, v: f64) {
    // Keep the shape float-like so parsers can't confuse gauge and counter
    // values; non-finite values should have been rejected upstream.
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

impl TraceEvent {
    /// The event as one JSON line (no trailing newline), with the fixed
    /// field order documented in the module header.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        match self {
            TraceEvent::Span {
                id,
                parent,
                name,
                start_ns,
                dur_ns,
                task,
                pass,
            } => {
                out.push_str("{\"type\":\"span\",\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"parent\":");
                write_opt_u64(&mut out, *parent);
                out.push_str(",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(",\"start_ns\":");
                out.push_str(&start_ns.to_string());
                out.push_str(",\"dur_ns\":");
                out.push_str(&dur_ns.to_string());
                if let Some(task) = task {
                    out.push_str(",\"task\":");
                    out.push_str(&task.to_string());
                }
                if let Some(pass) = pass {
                    out.push_str(",\"pass\":");
                    out.push_str(&pass.to_string());
                }
                out.push('}');
            }
            TraceEvent::Counter {
                name,
                value,
                span,
                pass,
            } => {
                out.push_str("{\"type\":\"counter\",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(",\"value\":");
                out.push_str(&value.to_string());
                out.push_str(",\"span\":");
                write_opt_u64(&mut out, *span);
                if let Some(pass) = pass {
                    out.push_str(",\"pass\":");
                    out.push_str(&pass.to_string());
                }
                out.push('}');
            }
            TraceEvent::Gauge {
                name,
                value,
                span,
                pass,
            } => {
                out.push_str("{\"type\":\"gauge\",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(",\"value\":");
                write_f64(&mut out, *value);
                out.push_str(",\"span\":");
                write_opt_u64(&mut out, *span);
                if let Some(pass) = pass {
                    out.push_str(",\"pass\":");
                    out.push_str(&pass.to_string());
                }
                out.push('}');
            }
            TraceEvent::Hist {
                name,
                data,
                span,
                pass,
            } => {
                out.push_str("{\"type\":\"hist\",\"name\":");
                write_json_string(&mut out, name);
                out.push_str(",\"count\":");
                out.push_str(&data.count().to_string());
                out.push_str(",\"sum\":");
                out.push_str(&data.sum().to_string());
                out.push_str(",\"min\":");
                out.push_str(&data.min().to_string());
                out.push_str(",\"max\":");
                out.push_str(&data.max().to_string());
                out.push_str(",\"buckets\":[");
                for (i, (bucket, n)) in data.buckets().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{bucket},{n}]"));
                }
                out.push_str("],\"span\":");
                write_opt_u64(&mut out, *span);
                if let Some(pass) = pass {
                    out.push_str(",\"pass\":");
                    out.push_str(&pass.to_string());
                }
                out.push('}');
            }
        }
        out
    }
}

/// Serialises events to JSONL text (one line per event, trailing newline).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

/// Why a trace failed to parse or validate. `line` is 1-based.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceError {
    /// 1-based line number of the offending event (0 for whole-trace
    /// problems discovered after the last line).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError {
        line,
        message: message.into(),
    })
}

/// A minimal single-line JSON object scanner for the flat trace schema:
/// string, unsigned-integer, float, and `null` values only.
struct LineParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

#[derive(Debug, PartialEq)]
enum JsonValue {
    Str(String),
    UInt(u64),
    Float(f64),
    Null,
    Arr(Vec<JsonValue>),
}

impl<'a> LineParser<'a> {
    fn new(text: &'a str, line: usize) -> Self {
        LineParser {
            bytes: text.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            err(self.line, format!("expected '{}'", b as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return err(self.line, "unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return err(self.line, "dangling escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return err(self.line, "bad \\u escape");
                            };
                            self.pos += 4;
                            let Some(c) = char::from_u32(code) else {
                                return err(self.line, "bad \\u codepoint");
                            };
                            out.push(c);
                        }
                        other => {
                            return err(self.line, format!("unknown escape '\\{}'", other as char))
                        }
                    }
                }
                b => {
                    // Re-borrow the full char for multi-byte UTF-8.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let rest = &self.bytes[start..];
                        let s = std::str::from_utf8(rest).map_err(|_| TraceError {
                            line: self.line,
                            message: "invalid utf-8 in string".to_string(),
                        })?;
                        let c = s.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, TraceError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return err(self.line, "expected ',' or ']'"),
                    }
                }
            }
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    err(self.line, "expected null")
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                let mut is_float = false;
                while let Some(&c) = self.bytes.get(self.pos) {
                    match c {
                        b'0'..=b'9' => self.pos += 1,
                        b'.' | b'e' | b'E' | b'+' | b'-' => {
                            is_float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
                if is_float || text.starts_with('-') {
                    match text.parse::<f64>() {
                        Ok(v) => Ok(JsonValue::Float(v)),
                        Err(_) => err(self.line, format!("bad number '{text}'")),
                    }
                } else {
                    match text.parse::<u64>() {
                        Ok(v) => Ok(JsonValue::UInt(v)),
                        Err(_) => err(self.line, format!("bad integer '{text}'")),
                    }
                }
            }
            _ => err(self.line, "expected a value"),
        }
    }

    /// Parses the whole line as one flat JSON object.
    fn parse_object(&mut self) -> Result<Vec<(String, JsonValue)>, TraceError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                let value = self.parse_value()?;
                fields.push((key, value));
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return err(self.line, "expected ',' or '}'"),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return err(self.line, "trailing content after object");
        }
        Ok(fields)
    }
}

struct Fields {
    fields: Vec<(String, JsonValue)>,
    line: usize,
}

impl Fields {
    fn take(&mut self, key: &str) -> Result<JsonValue, TraceError> {
        match self.fields.iter().position(|(k, _)| k == key) {
            Some(i) => Ok(self.fields.remove(i).1),
            None => err(self.line, format!("missing field '{key}'")),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<String, TraceError> {
        match self.take(key)? {
            JsonValue::Str(s) => Ok(s),
            _ => err(self.line, format!("field '{key}' must be a string")),
        }
    }

    fn take_u64(&mut self, key: &str) -> Result<u64, TraceError> {
        match self.take(key)? {
            JsonValue::UInt(v) => Ok(v),
            _ => err(
                self.line,
                format!("field '{key}' must be an unsigned integer"),
            ),
        }
    }

    fn take_opt_u64(&mut self, key: &str) -> Result<Option<u64>, TraceError> {
        match self.take(key)? {
            JsonValue::UInt(v) => Ok(Some(v)),
            JsonValue::Null => Ok(None),
            _ => err(
                self.line,
                format!("field '{key}' must be an unsigned integer or null"),
            ),
        }
    }

    /// Like [`Fields::take_opt_u64`], but a missing key is also `None` —
    /// for fields that are omitted rather than written as `null`.
    fn take_absent_u64(&mut self, key: &str) -> Result<Option<u64>, TraceError> {
        if self.fields.iter().any(|(k, _)| k == key) {
            self.take_opt_u64(key)
        } else {
            Ok(None)
        }
    }

    /// Takes a `[[bucket, count], ...]` array (the `hist` bucket list).
    fn take_buckets(&mut self, key: &str) -> Result<Vec<(u32, u64)>, TraceError> {
        let JsonValue::Arr(items) = self.take(key)? else {
            return err(self.line, format!("field '{key}' must be an array"));
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let JsonValue::Arr(pair) = item else {
                return err(
                    self.line,
                    format!("field '{key}' must hold [bucket, count] pairs"),
                );
            };
            match pair.as_slice() {
                [JsonValue::UInt(bucket), JsonValue::UInt(n)] if *bucket <= u32::MAX as u64 => {
                    out.push((*bucket as u32, *n));
                }
                _ => {
                    return err(
                        self.line,
                        format!("field '{key}' must hold [bucket, count] pairs"),
                    )
                }
            }
        }
        Ok(out)
    }

    fn take_f64(&mut self, key: &str) -> Result<f64, TraceError> {
        match self.take(key)? {
            JsonValue::Float(v) => Ok(v),
            JsonValue::UInt(v) => Ok(v as f64),
            _ => err(self.line, format!("field '{key}' must be a number")),
        }
    }

    fn finish(self) -> Result<(), TraceError> {
        if let Some((key, _)) = self.fields.first() {
            return err(self.line, format!("unknown field '{key}'"));
        }
        Ok(())
    }
}

/// Parses JSONL trace text into events. Blank lines are rejected — every
/// line must be one event object.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let fields = LineParser::new(line, lineno).parse_object()?;
        let mut fields = Fields {
            fields,
            line: lineno,
        };
        let kind = fields.take_str("type")?;
        let event = match kind.as_str() {
            "span" => TraceEvent::Span {
                id: fields.take_u64("id")?,
                parent: fields.take_opt_u64("parent")?,
                name: fields.take_str("name")?,
                start_ns: fields.take_u64("start_ns")?,
                dur_ns: fields.take_u64("dur_ns")?,
                task: fields.take_absent_u64("task")?,
                pass: fields.take_absent_u64("pass")?,
            },
            "counter" => TraceEvent::Counter {
                name: fields.take_str("name")?,
                value: fields.take_u64("value")?,
                span: fields.take_opt_u64("span")?,
                pass: fields.take_absent_u64("pass")?,
            },
            "gauge" => TraceEvent::Gauge {
                name: fields.take_str("name")?,
                value: fields.take_f64("value")?,
                span: fields.take_opt_u64("span")?,
                pass: fields.take_absent_u64("pass")?,
            },
            "hist" => {
                let name = fields.take_str("name")?;
                let count = fields.take_u64("count")?;
                let sum = fields.take_u64("sum")?;
                let min = fields.take_u64("min")?;
                let max = fields.take_u64("max")?;
                let buckets = fields.take_buckets("buckets")?;
                let data =
                    HistogramData::from_parts(buckets, count, sum, min, max).map_err(|e| {
                        TraceError {
                            line: lineno,
                            message: format!("histogram '{name}': {e}"),
                        }
                    })?;
                TraceEvent::Hist {
                    name,
                    data,
                    span: fields.take_opt_u64("span")?,
                    pass: fields.take_absent_u64("pass")?,
                }
            }
            other => return err(lineno, format!("unknown event type '{other}'")),
        };
        fields.finish()?;
        events.push(event);
    }
    Ok(events)
}

/// Validates the schema invariants a well-formed trace must satisfy:
///
/// 1. span ids are unique and positive;
/// 2. every `parent` and counter/gauge/hist `span` reference resolves to a
///    span present in the trace;
/// 3. counter, gauge and histogram names are in the typed catalogs,
///    counter values are positive, gauge values finite, histograms
///    nonempty and internally consistent;
/// 4. spans nest: a child's `[start, start+dur]` lies within its parent's
///    — also across task groups, which is how a worker task's spans are
///    checked against the main-thread span they were attached to — and a
///    parent closes (is emitted) after each of its children;
/// 5. span end times are non-decreasing in emission order *within each
///    task group* (untagged spans form one group). Independent tasks run
///    concurrently, so no close order holds across groups.
pub fn validate_trace(events: &[TraceEvent]) -> Result<(), TraceError> {
    validate_trace_mode(events, false)
}

/// Like [`validate_trace`], but accepts the truncated traces a bounded
/// flight recorder dumps: the ring buffer keeps only the newest events, so
/// a `parent` or `span` reference may point at a span that was evicted at
/// the buffer's head — or that was still open (never closed, hence never
/// emitted) when the dump was taken. Such dangling references are allowed;
/// every invariant among the *retained* events is still enforced.
pub fn validate_trace_truncated(events: &[TraceEvent]) -> Result<(), TraceError> {
    validate_trace_mode(events, true)
}

fn validate_trace_mode(events: &[TraceEvent], truncated: bool) -> Result<(), TraceError> {
    // Pass 1: collect spans.
    let mut span_info: Vec<(u64, Option<u64>, u64, u64, usize)> = Vec::new();
    let mut ids = BTreeSet::new();
    for (idx, event) in events.iter().enumerate() {
        let lineno = idx + 1;
        if let TraceEvent::Span {
            id,
            parent,
            start_ns,
            dur_ns,
            ..
        } = event
        {
            if *id == 0 {
                return err(lineno, "span id 0 is reserved");
            }
            if !ids.insert(*id) {
                return err(lineno, format!("duplicate span id {id}"));
            }
            span_info.push((*id, *parent, *start_ns, *dur_ns, lineno));
        }
    }
    let lookup = |id: u64| span_info.iter().find(|s| s.0 == id);

    // Pass 2: per-event checks.
    let mut last_end: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    for (idx, event) in events.iter().enumerate() {
        let lineno = idx + 1;
        match event {
            TraceEvent::Span {
                id,
                parent,
                name,
                start_ns,
                dur_ns,
                task,
                ..
            } => {
                if name.is_empty() {
                    return err(lineno, "span name must not be empty");
                }
                if let Some(pid) = parent {
                    if *pid == *id {
                        return err(lineno, format!("span {id} is its own parent"));
                    }
                    // In truncated mode a missing parent is legal: it
                    // closed after the dump (still open) or was evicted at
                    // the ring-buffer head, so there is nothing to check
                    // the child against.
                    if let Some(&(_, _, p_start, p_dur, p_line)) = lookup(*pid) {
                        let end = start_ns + dur_ns;
                        if *start_ns < p_start || end > p_start + p_dur {
                            return err(
                                lineno,
                                format!("span {id} [{start_ns}, {end}] escapes parent {pid}"),
                            );
                        }
                        // Close order: a parent is open while its children
                        // run, so its close event must come later — this
                        // holds even across threads, where a replayed
                        // task's spans land before the enclosing
                        // main-thread span closes.
                        if p_line <= lineno {
                            return err(
                                lineno,
                                format!("span {id} is emitted after its parent {pid} closed"),
                            );
                        }
                    } else if !truncated {
                        return err(lineno, format!("span {id} parent {pid} not in trace"));
                    }
                }
                let end = start_ns + dur_ns;
                if let Some(&prev) = last_end.get(task) {
                    if end < prev {
                        return err(
                            lineno,
                            format!(
                                "span {id} closes at {end}, before prior close {prev} \
                                 in the same task group"
                            ),
                        );
                    }
                }
                last_end.insert(*task, end);
            }
            TraceEvent::Counter {
                name, value, span, ..
            } => {
                if Counter::from_name(name).is_none() {
                    return err(lineno, format!("counter '{name}' not in catalog"));
                }
                if *value == 0 {
                    return err(lineno, format!("counter '{name}' flushed a zero total"));
                }
                if let Some(sid) = span {
                    if lookup(*sid).is_none() && !truncated {
                        return err(lineno, format!("counter references missing span {sid}"));
                    }
                }
            }
            TraceEvent::Gauge {
                name, value, span, ..
            } => {
                if Gauge::from_name(name).is_none() {
                    return err(lineno, format!("gauge '{name}' not in catalog"));
                }
                if !value.is_finite() {
                    return err(lineno, format!("gauge '{name}' is not finite"));
                }
                if let Some(sid) = span {
                    if lookup(*sid).is_none() && !truncated {
                        return err(lineno, format!("gauge references missing span {sid}"));
                    }
                }
            }
            TraceEvent::Hist {
                name, data, span, ..
            } => {
                if Histogram::from_name(name).is_none() {
                    return err(lineno, format!("histogram '{name}' not in catalog"));
                }
                if data.is_empty() {
                    return err(lineno, format!("histogram '{name}' flushed empty"));
                }
                if let Some(sid) = span {
                    if lookup(*sid).is_none() && !truncated {
                        return err(lineno, format!("histogram references missing span {sid}"));
                    }
                }
            }
        }
    }
    Ok(())
}

/// An [`ObsSink`] appending one JSON line per event to a buffered file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing there.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl ObsSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        // A failing trace write is reported once at flush; dropping events
        // mid-run beats panicking inside instrumented hot paths.
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        if let Err(e) = writer.flush() {
            eprintln!("warning: failed to flush MBR_TRACE output: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span {
                id: 2,
                parent: Some(1),
                name: "flow.compose.timing".to_string(),
                start_ns: 100,
                dur_ns: 200,
                task: None,
                pass: None,
            },
            TraceEvent::Counter {
                name: "lp.simplex.pivots".to_string(),
                value: 42,
                span: Some(1),
                pass: None,
            },
            TraceEvent::Gauge {
                name: "sta.wns_ps".to_string(),
                value: -12.5,
                span: None,
                pass: None,
            },
            TraceEvent::Span {
                id: 1,
                parent: None,
                name: "flow.compose".to_string(),
                start_ns: 0,
                dur_ns: 400,
                task: None,
                pass: None,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let parsed = parse_trace(&text).expect("parse");
        assert_eq!(parsed, events);
        // And the re-serialisation is byte-identical.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn emitted_lines_match_documented_shapes() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"flow.compose.timing\",\"start_ns\":100,\"dur_ns\":200}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"counter\",\"name\":\"lp.simplex.pivots\",\"value\":42,\"span\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"gauge\",\"name\":\"sta.wns_ps\",\"value\":-12.5,\"span\":null}"
        );
    }

    #[test]
    fn integral_gauges_keep_a_decimal_point() {
        let text = TraceEvent::Gauge {
            name: "sta.tns_ps".to_string(),
            value: 17.0,
            span: None,
            pass: None,
        }
        .to_json();
        assert!(text.contains("\"value\":17.0"), "{text}");
    }

    #[test]
    fn valid_trace_validates() {
        validate_trace(&sample_events()).expect("valid");
    }

    #[test]
    fn validation_rejects_unknown_counter() {
        let events = vec![TraceEvent::Counter {
            name: "lp.simplex.pivotz".to_string(),
            value: 1,
            span: None,
            pass: None,
        }];
        let e = validate_trace(&events).expect_err("must fail");
        assert!(e.message.contains("not in catalog"), "{e}");
    }

    #[test]
    fn validation_rejects_duplicate_ids() {
        let mut events = sample_events();
        events.push(TraceEvent::Span {
            id: 1,
            parent: None,
            name: "flow.compose".to_string(),
            start_ns: 400,
            dur_ns: 1,
            task: None,
            pass: None,
        });
        assert!(validate_trace(&events).is_err());
    }

    #[test]
    fn validation_rejects_child_escaping_parent() {
        let events = vec![
            TraceEvent::Span {
                id: 2,
                parent: Some(1),
                name: "b".to_string(),
                start_ns: 50,
                dur_ns: 100, // ends at 150, parent ends at 120
                task: None,
                pass: None,
            },
            TraceEvent::Span {
                id: 1,
                parent: None,
                name: "a".to_string(),
                start_ns: 0,
                dur_ns: 120,
                task: None,
                pass: None,
            },
        ];
        let e = validate_trace(&events).expect_err("must fail");
        assert!(e.message.contains("escapes parent"), "{e}");
    }

    #[test]
    fn validation_rejects_missing_parent() {
        let events = vec![TraceEvent::Span {
            id: 2,
            parent: Some(9),
            name: "b".to_string(),
            start_ns: 0,
            dur_ns: 1,
            task: None,
            pass: None,
        }];
        assert!(validate_trace(&events).is_err());
    }

    #[test]
    fn validation_rejects_out_of_order_closes() {
        let events = vec![
            TraceEvent::Span {
                id: 1,
                parent: None,
                name: "a".to_string(),
                start_ns: 0,
                dur_ns: 500,
                task: None,
                pass: None,
            },
            TraceEvent::Span {
                id: 2,
                parent: None,
                name: "b".to_string(),
                start_ns: 10,
                dur_ns: 20,
                task: None,
                pass: None,
            },
        ];
        let e = validate_trace(&events).expect_err("must fail");
        assert!(e.message.contains("before prior close"), "{e}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("not json\n").is_err());
        assert!(parse_trace("{\"type\":\"span\"}\n").is_err());
        assert!(parse_trace("{\"type\":\"warp\",\"x\":1}\n").is_err());
        assert!(
            parse_trace("{\"type\":\"counter\",\"name\":\"lp.simplex.pivots\",\"value\":1,\"span\":null,\"extra\":2}\n")
                .is_err()
        );
    }

    fn span(
        id: u64,
        parent: Option<u64>,
        start_ns: u64,
        dur_ns: u64,
        task: Option<u64>,
    ) -> TraceEvent {
        TraceEvent::Span {
            id,
            parent,
            name: format!("test.s{id}"),
            start_ns,
            dur_ns,
            task,
            pass: None,
        }
    }

    #[test]
    fn task_field_round_trips_and_is_omitted_when_absent() {
        let tagged = span(2, Some(1), 10, 5, Some(17));
        let text = tagged.to_json();
        assert!(text.ends_with(",\"dur_ns\":5,\"task\":17}"), "{text}");
        let events = vec![tagged, span(1, None, 0, 100, None)];
        let jsonl = to_jsonl(&events);
        assert_eq!(parse_trace(&jsonl).expect("parse"), events);
        // Untagged spans serialize without the field entirely.
        assert!(!events[1].to_json().contains("task"));
    }

    #[test]
    fn pass_field_round_trips_and_is_omitted_when_absent() {
        let tagged = TraceEvent::Span {
            id: 2,
            parent: Some(1),
            name: "test.s2".to_string(),
            start_ns: 10,
            dur_ns: 5,
            task: Some(17),
            pass: Some(3),
        };
        let text = tagged.to_json();
        assert!(text.ends_with(",\"task\":17,\"pass\":3}"), "{text}");
        let counter = TraceEvent::Counter {
            name: "lp.simplex.pivots".to_string(),
            value: 1,
            span: None,
            pass: Some(0),
        };
        assert!(counter.to_json().ends_with(",\"span\":null,\"pass\":0}"));
        let events = vec![tagged, counter, span(1, None, 0, 100, None)];
        let jsonl = to_jsonl(&events);
        assert_eq!(parse_trace(&jsonl).expect("parse"), events);
        // Untagged events serialize without the field entirely.
        assert!(!events[2].to_json().contains("pass"));
    }

    #[test]
    fn concurrent_task_groups_may_close_out_of_order() {
        // Two worker tasks attached to span 1: task 10 closes at 110, task
        // 11 at 50 — globally decreasing, but each group is internally
        // ordered, so the trace is valid.
        let events = vec![
            span(2, Some(1), 10, 100, Some(10)),
            span(3, Some(1), 20, 30, Some(11)),
            span(1, None, 0, 400, None),
        ];
        validate_trace(&events).expect("valid multi-thread trace");
    }

    #[test]
    fn same_task_group_must_still_close_in_order() {
        let events = vec![
            span(2, Some(1), 10, 100, Some(10)),
            span(3, Some(1), 20, 30, Some(10)),
            span(1, None, 0, 400, None),
        ];
        let e = validate_trace(&events).expect_err("must fail");
        assert!(e.message.contains("same task group"), "{e}");
    }

    #[test]
    fn parent_closing_before_child_is_rejected() {
        let events = vec![span(1, None, 0, 400, None), span(2, Some(1), 10, 20, None)];
        let e = validate_trace(&events).expect_err("must fail");
        assert!(e.message.contains("after its parent"), "{e}");
    }

    fn sample_hist(span: Option<u64>) -> TraceEvent {
        let mut data = HistogramData::new();
        for v in [1, 1, 7] {
            data.record(v);
        }
        TraceEvent::Hist {
            name: "lp.setpart.solve_nodes".to_string(),
            data,
            span,
            pass: None,
        }
    }

    #[test]
    fn hist_events_round_trip_with_documented_shape() {
        let events = vec![sample_hist(Some(1)), span(1, None, 0, 100, None)];
        let text = to_jsonl(&events);
        assert_eq!(
            text.lines().next().expect("line"),
            "{\"type\":\"hist\",\"name\":\"lp.setpart.solve_nodes\",\"count\":3,\"sum\":9,\
             \"min\":1,\"max\":7,\"buckets\":[[1,2],[6,1]],\"span\":1}"
        );
        let parsed = parse_trace(&text).expect("parse");
        assert_eq!(parsed, events);
        assert_eq!(to_jsonl(&parsed), text);
        validate_trace(&events).expect("valid");
    }

    #[test]
    fn hist_validation_rejects_unknown_name_and_dangling_span() {
        let mut events = vec![sample_hist(None)];
        if let TraceEvent::Hist { name, .. } = &mut events[0] {
            *name = "lp.setpart.solve_nodez".to_string();
        }
        let e = validate_trace(&events).expect_err("unknown name");
        assert!(e.message.contains("not in catalog"), "{e}");

        let dangling = vec![sample_hist(Some(9))];
        let e = validate_trace(&dangling).expect_err("dangling span");
        assert!(e.message.contains("missing span"), "{e}");
        validate_trace_truncated(&dangling).expect("tolerated when truncated");
    }

    #[test]
    fn hist_parse_rejects_inconsistent_parts() {
        // count disagrees with the bucket sum.
        let line = "{\"type\":\"hist\",\"name\":\"lp.setpart.solve_nodes\",\"count\":4,\
                    \"sum\":9,\"min\":1,\"max\":7,\"buckets\":[[1,2],[6,1]],\"span\":null}\n";
        let e = parse_trace(line).expect_err("must fail");
        assert!(e.message.contains("sum to 3"), "{e}");
        // Buckets must be [index, count] pairs.
        let line = "{\"type\":\"hist\",\"name\":\"lp.setpart.solve_nodes\",\"count\":1,\
                    \"sum\":1,\"min\":1,\"max\":1,\"buckets\":[[1]],\"span\":null}\n";
        assert!(parse_trace(line).is_err());
    }

    #[test]
    fn truncated_mode_accepts_ring_buffer_suffixes() {
        // A valid trace whose head was evicted: keep only the tail. Span 2
        // references parent 1 whose close event is gone, and the counter
        // references span 3 which was still open at dump time.
        let events = vec![
            span(2, Some(1), 10, 20, None),
            TraceEvent::Counter {
                name: "lp.simplex.pivots".to_string(),
                value: 4,
                span: Some(3),
                pass: None,
            },
        ];
        let e = validate_trace(&events).expect_err("strict rejects dangling parent");
        assert!(e.message.contains("not in trace"), "{e}");
        validate_trace_truncated(&events).expect("truncated accepts");
    }

    #[test]
    fn truncated_mode_still_rejects_real_violations() {
        // Duplicate ids.
        let dup = vec![span(2, None, 0, 5, None), span(2, None, 5, 5, None)];
        assert!(validate_trace_truncated(&dup).is_err());
        // Unknown counter names.
        let bad_name = vec![TraceEvent::Counter {
            name: "no.such".to_string(),
            value: 1,
            span: None,
            pass: None,
        }];
        assert!(validate_trace_truncated(&bad_name).is_err());
        // Same-group close-order violations among retained events.
        let disorder = vec![span(1, None, 0, 500, None), span(2, None, 10, 20, None)];
        assert!(validate_trace_truncated(&disorder).is_err());
        // A child escaping a *retained* parent is still checked.
        let escape = vec![span(2, Some(1), 50, 100, None), span(1, None, 0, 120, None)];
        assert!(validate_trace_truncated(&escape).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd\te\u{1}f\u{e9}");
        let mut p = LineParser::new(&s, 1);
        let parsed = p.parse_string().expect("parse");
        assert_eq!(parsed, "a\"b\\c\nd\te\u{1}f\u{e9}");
    }
}
