//! The `pass` tag: which composition pass emitted an event.
//!
//! A [`crate::CompositionSession`-style] driver runs the flow repeatedly —
//! pass 0 is the initial batch composition, pass *n* ≥ 1 the *n*-th ECO
//! recompose. Traces from such a run interleave events from every pass, so
//! each event carries an optional `pass` tag stamped from a thread-local
//! scope: code wraps one flow invocation in [`with_pass`] and every span,
//! counter, and gauge emitted inside (including events replayed from
//! worker tasks, see [`crate::TaskObs`]) is tagged with that pass number.
//! Outside any [`with_pass`] scope the tag is `None` and the serialized
//! trace is byte-identical to the pre-session format.

use std::cell::Cell;

thread_local! {
    static CURRENT_PASS: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The pass tag in effect on this thread, if any.
pub fn current_pass() -> Option<u64> {
    CURRENT_PASS.with(|c| c.get())
}

/// Runs `f` with this thread's pass tag set to `pass`, restoring the
/// previous tag (even on panic) afterwards. Scopes nest; the innermost
/// wins.
pub fn with_pass<R>(pass: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_PASS.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT_PASS.with(|c| c.replace(Some(pass)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_scope_nests_and_restores() {
        assert_eq!(current_pass(), None);
        let result = with_pass(3, || {
            assert_eq!(current_pass(), Some(3));
            with_pass(4, || assert_eq!(current_pass(), Some(4)));
            current_pass()
        });
        assert_eq!(result, Some(3));
        assert_eq!(current_pass(), None);
    }

    #[test]
    fn pass_scope_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_pass(7, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_pass(), None);
    }
}
