//! Post-run aggregation: turn a recorded event stream or a
//! [`StageTimings`] into the human-readable report behind `--report`.

use std::collections::BTreeMap;

use crate::catalog::Histogram;
use crate::hist::HistogramData;
use crate::stage::StageTimings;
use crate::table::{fmt_ns, Table};
use crate::trace::TraceEvent;

/// Aggregated view of one run's events: per-span-name totals, counter
/// totals, last-seen gauge values, and merged histograms.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Per span name: (times entered, total nanoseconds).
    pub spans: BTreeMap<String, (u64, u64)>,
    /// Per counter name: accumulated total.
    pub counters: BTreeMap<String, u64>,
    /// Per gauge name: last recorded value.
    pub gauges: BTreeMap<String, f64>,
    /// Per histogram name: the exact merge of every flushed distribution.
    pub hists: BTreeMap<String, HistogramData>,
}

impl Summary {
    /// Aggregates a recorded event stream (see [`crate::Recorder`]).
    pub fn from_events(events: &[TraceEvent]) -> Summary {
        let mut summary = Summary::default();
        for event in events {
            match event {
                TraceEvent::Span { name, dur_ns, .. } => {
                    let entry = summary.spans.entry(name.clone()).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += dur_ns;
                }
                TraceEvent::Counter { name, value, .. } => {
                    *summary.counters.entry(name.clone()).or_insert(0) += value;
                }
                TraceEvent::Gauge { name, value, .. } => {
                    summary.gauges.insert(name.clone(), *value);
                }
                TraceEvent::Hist { name, data, .. } => {
                    summary
                        .hists
                        .entry(name.clone())
                        .or_insert_with(HistogramData::new)
                        .merge(data);
                }
            }
        }
        summary
    }

    /// Renders the span/counter/gauge tables. Empty sections are omitted;
    /// an entirely empty summary renders a one-line note instead.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let mut t = Table::new(["span", "count", "total"]).right_align([1, 2]);
            for (name, (count, total_ns)) in &self.spans {
                t.row([name.clone(), count.to_string(), fmt_ns(*total_ns)]);
            }
            out.push_str(&t.render());
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(["counter", "total"]).right_align([1]);
            for (name, value) in &self.counters {
                t.row([name.clone(), value.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(["gauge", "value"]).right_align([1]);
            for (name, value) in &self.gauges {
                t.row([name.clone(), format!("{value:.3}")]);
            }
            out.push_str(&t.render());
        }
        if !self.hists.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(["histogram", "count", "p50", "p90", "p99", "max"])
                .right_align([1, 2, 3, 4, 5]);
            for (name, data) in &self.hists {
                // Timing-valued histograms render with time units; pure
                // count distributions as plain integers.
                let timing = Histogram::from_name(name).is_some_and(Histogram::is_timing);
                let cell = |v: u64| if timing { fmt_ns(v) } else { v.to_string() };
                t.row([
                    name.clone(),
                    data.count().to_string(),
                    cell(data.quantile(0.5)),
                    cell(data.quantile(0.9)),
                    cell(data.quantile(0.99)),
                    cell(data.max()),
                ]);
            }
            out.push_str(&t.render());
        }
        if out.is_empty() {
            out.push_str("no events recorded\n");
        }
        out
    }
}

/// Renders a [`StageTimings`] breakdown as the per-stage table the flow
/// binaries print: one row per stage plus `checks` and `total`, with each
/// stage's share of the total.
pub fn stage_table(timings: &StageTimings) -> String {
    let total = timings.total_ns.max(1);
    let pct = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / total as f64);
    let mut t = Table::new(["stage", "time", "share"]).right_align([1, 2]);
    for (stage, ns) in timings.rows() {
        t.row([stage.name().to_string(), fmt_ns(ns), pct(ns)]);
    }
    t.row([
        "checks".to_string(),
        fmt_ns(timings.checks_ns),
        pct(timings.checks_ns),
    ]);
    let unaccounted = timings.total_ns.saturating_sub(timings.accounted_ns());
    t.row(["(other)".to_string(), fmt_ns(unaccounted), pct(unaccounted)]);
    t.row(["total".to_string(), fmt_ns(timings.total_ns), String::new()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::FlowStage;

    #[test]
    fn summary_aggregates_events() {
        let events = vec![
            TraceEvent::Span {
                id: 1,
                parent: None,
                name: "a".to_string(),
                start_ns: 0,
                dur_ns: 10,
                task: None,
                pass: None,
            },
            TraceEvent::Span {
                id: 2,
                parent: None,
                name: "a".to_string(),
                start_ns: 10,
                dur_ns: 5,
                task: None,
                pass: None,
            },
            TraceEvent::Counter {
                name: "lp.simplex.pivots".to_string(),
                value: 3,
                span: None,
                pass: None,
            },
            TraceEvent::Gauge {
                name: "sta.wns_ps".to_string(),
                value: -1.0,
                span: None,
                pass: None,
            },
            TraceEvent::Gauge {
                name: "sta.wns_ps".to_string(),
                value: -0.5,
                span: None,
                pass: None,
            },
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.spans.get("a"), Some(&(2, 15)));
        assert_eq!(s.counters.get("lp.simplex.pivots"), Some(&3));
        assert_eq!(s.gauges.get("sta.wns_ps"), Some(&-0.5));
        let rendered = s.render();
        assert!(rendered.contains("lp.simplex.pivots"));
        assert!(rendered.contains("-0.500"));
    }

    #[test]
    fn summary_merges_histograms_and_renders_quantiles() {
        let mut a = HistogramData::new();
        a.record(4);
        a.record(4);
        let mut b = HistogramData::new();
        b.record(100);
        let events = vec![
            TraceEvent::Hist {
                name: "lp.setpart.solve_nodes".to_string(),
                data: a,
                span: None,
                pass: None,
            },
            TraceEvent::Hist {
                name: "lp.setpart.solve_nodes".to_string(),
                data: b,
                span: None,
                pass: None,
            },
        ];
        let s = Summary::from_events(&events);
        let merged = s.hists.get("lp.setpart.solve_nodes").expect("merged");
        assert_eq!((merged.count(), merged.min(), merged.max()), (3, 4, 100));
        let rendered = s.render();
        assert!(rendered.contains("histogram"), "{rendered}");
        for col in ["count", "p50", "p90", "p99", "max"] {
            assert!(rendered.contains(col), "missing {col}: {rendered}");
        }
        assert!(rendered.contains("100"), "{rendered}");
    }

    #[test]
    fn timing_histograms_render_with_time_units() {
        let mut d = HistogramData::new();
        d.record(1_500_000);
        let s = Summary::from_events(&[TraceEvent::Hist {
            name: "lp.setpart.solve_ns".to_string(),
            data: d,
            span: None,
            pass: None,
        }]);
        let rendered = s.render();
        assert!(rendered.contains("ms"), "{rendered}");
    }

    #[test]
    fn empty_summary_renders_note() {
        assert_eq!(Summary::default().render(), "no events recorded\n");
    }

    #[test]
    fn stage_table_lists_every_stage_and_total() {
        let mut timings = StageTimings::default();
        timings.add(FlowStage::Assignment, 600_000);
        timings.checks_ns = 100_000;
        timings.total_ns = 1_000_000;
        let out = stage_table(&timings);
        for stage in FlowStage::ALL {
            assert!(out.contains(stage.name()), "missing {stage}");
        }
        assert!(out.contains("checks"));
        assert!(out.contains("total"));
        assert!(out.contains("60.0%"));
    }
}
