//! Span-tree profiling: aggregate a trace into inclusive/exclusive time
//! per span *path* and emit flamegraph-compatible collapsed stacks
//! (DESIGN.md §13).
//!
//! A span path is the `;`-joined chain of span names from a root to a
//! span (`flow.compose;flow.compose.assignment;...`). Inclusive time is
//! the span's own duration; exclusive time subtracts the durations of its
//! direct children, i.e. the time actually spent at that tree level. In a
//! serial trace the exclusive times telescope: summed over all paths they
//! equal the total root-span duration. In a parallel trace sibling task
//! spans may overlap their parent, so the subtraction saturates at zero
//! and the totals become attribution estimates rather than an exact
//! partition.
//!
//! The `.folded` output is the collapsed-stack format flamegraph tooling
//! consumes: one `path value` line per path, here with exclusive
//! nanoseconds as the value, sorted lexicographically for determinism.

use std::collections::BTreeMap;

use crate::table::{fmt_ns, Table};
use crate::trace::TraceEvent;

/// Aggregated timing of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Spans that closed on this path.
    pub count: u64,
    /// Total duration of those spans.
    pub inclusive_ns: u64,
    /// Inclusive time minus direct children's inclusive time (saturating).
    pub exclusive_ns: u64,
}

/// A profile: per-path aggregates plus whole-trace totals.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Aggregates keyed by `;`-joined span path.
    pub paths: BTreeMap<String, PathStats>,
    /// Total duration of root spans (no parent, or parent not in the
    /// trace — the truncated-dump case).
    pub root_ns: u64,
    /// Spans profiled.
    pub spans: usize,
}

impl Profile {
    /// Sum of exclusive time over all paths. Equals [`Profile::root_ns`]
    /// for serial traces (see the module docs).
    pub fn total_exclusive_ns(&self) -> u64 {
        self.paths.values().map(|s| s.exclusive_ns).sum()
    }

    /// Paths sorted by exclusive time, descending (ties by path name),
    /// truncated to `top`.
    pub fn hot_paths(&self, top: usize) -> Vec<(&str, PathStats)> {
        let mut rows: Vec<(&str, PathStats)> =
            self.paths.iter().map(|(p, s)| (p.as_str(), *s)).collect();
        rows.sort_by(|a, b| b.1.exclusive_ns.cmp(&a.1.exclusive_ns).then(a.0.cmp(b.0)));
        rows.truncate(top);
        rows
    }

    /// Renders the top-`top` hot-path table.
    pub fn render_hot_paths(&self, top: usize) -> String {
        let mut t =
            Table::new(["span path", "count", "inclusive", "exclusive"]).right_align([1, 2, 3]);
        for (path, stats) in self.hot_paths(top) {
            t.row([
                path.to_string(),
                stats.count.to_string(),
                fmt_ns(stats.inclusive_ns),
                fmt_ns(stats.exclusive_ns),
            ]);
        }
        t.render()
    }
}

/// A frame as it appears in a `.folded` line: `;` separates frames and
/// the final space separates the value, so both are replaced.
fn folded_frame(name: &str) -> String {
    name.replace(';', ":").replace(' ', "_")
}

/// Profiles the spans of a trace. Counter/gauge/hist events are ignored;
/// spans with an unresolvable parent (truncated traces) are treated as
/// roots, and parent cycles — impossible in a validated trace — are cut
/// at the revisited span.
pub fn profile_events(events: &[TraceEvent]) -> Profile {
    struct SpanRec<'a> {
        parent: Option<u64>,
        name: &'a str,
        dur_ns: u64,
    }
    let mut spans: BTreeMap<u64, SpanRec<'_>> = BTreeMap::new();
    for event in events {
        if let TraceEvent::Span {
            id,
            parent,
            name,
            dur_ns,
            ..
        } = event
        {
            spans.insert(
                *id,
                SpanRec {
                    parent: *parent,
                    name,
                    dur_ns: *dur_ns,
                },
            );
        }
    }

    // Direct-children inclusive totals, for the exclusive subtraction.
    let mut children_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in spans.values() {
        if let Some(pid) = rec.parent.filter(|p| spans.contains_key(p)) {
            *children_ns.entry(pid).or_insert(0) += rec.dur_ns;
        }
    }

    let mut profile = Profile {
        spans: spans.len(),
        ..Profile::default()
    };
    for (&id, rec) in &spans {
        // Build the root→span frame chain, cutting unresolvable parents
        // and (malformed-input) cycles.
        let mut frames = vec![folded_frame(rec.name)];
        let mut seen = vec![id];
        let mut cursor = rec.parent;
        let mut is_root = rec.parent.is_none();
        while let Some(pid) = cursor {
            let Some(parent) = spans.get(&pid) else {
                is_root = true;
                break;
            };
            if seen.contains(&pid) {
                break;
            }
            seen.push(pid);
            frames.push(folded_frame(parent.name));
            cursor = parent.parent;
            is_root = parent.parent.is_none();
        }
        frames.reverse();
        let path = frames.join(";");
        let stats = profile.paths.entry(path).or_default();
        stats.count += 1;
        stats.inclusive_ns += rec.dur_ns;
        stats.exclusive_ns += rec
            .dur_ns
            .saturating_sub(children_ns.get(&id).copied().unwrap_or(0));
        if is_root && seen.len() == 1 {
            profile.root_ns += rec.dur_ns;
        }
    }
    profile
}

/// Serialises a profile as collapsed stacks: one `path exclusive_ns` line
/// per path, lexicographically sorted, trailing newline.
pub fn to_folded(profile: &Profile) -> String {
    let mut out = String::new();
    for (path, stats) in &profile.paths {
        out.push_str(path);
        out.push(' ');
        out.push_str(&stats.exclusive_ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack text back into `path → value`. Rejects blank
/// lines, missing values, and duplicate paths — [`to_folded`] output
/// always round-trips.
pub fn parse_folded(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let Some((path, value)) = line.rsplit_once(' ') else {
            return Err(format!("folded line {lineno}: expected 'path value'"));
        };
        if path.is_empty() {
            return Err(format!("folded line {lineno}: empty path"));
        }
        let value: u64 = value
            .parse()
            .map_err(|_| format!("folded line {lineno}: bad value '{value}'"))?;
        if out.insert(path.to_string(), value).is_some() {
            return Err(format!("folded line {lineno}: duplicate path '{path}'"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent::Span {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            dur_ns,
            task: None,
            pass: None,
        }
    }

    /// root(100) ─ a(30, twice: 30+20) ─ leaf(10) under the first a.
    fn sample() -> Vec<TraceEvent> {
        vec![
            span(3, Some(2), "leaf", 5, 10),
            span(2, Some(1), "a", 0, 30),
            span(4, Some(1), "a", 30, 20),
            span(1, None, "root", 0, 100),
        ]
    }

    #[test]
    fn inclusive_and_exclusive_aggregate_by_path() {
        let p = profile_events(&sample());
        assert_eq!(p.spans, 4);
        assert_eq!(p.root_ns, 100);
        let root = p.paths.get("root").expect("root path");
        assert_eq!(
            (root.count, root.inclusive_ns, root.exclusive_ns),
            (1, 100, 50)
        );
        let a = p.paths.get("root;a").expect("a path");
        assert_eq!((a.count, a.inclusive_ns, a.exclusive_ns), (2, 50, 40));
        let leaf = p.paths.get("root;a;leaf").expect("leaf path");
        assert_eq!(
            (leaf.count, leaf.inclusive_ns, leaf.exclusive_ns),
            (1, 10, 10)
        );
        // Serial trace: exclusive times telescope to the root duration.
        assert_eq!(p.total_exclusive_ns(), p.root_ns);
    }

    #[test]
    fn truncated_parents_become_roots() {
        let p = profile_events(&[span(7, Some(99), "orphan", 0, 40)]);
        assert_eq!(p.root_ns, 40);
        assert_eq!(p.paths.get("orphan").map(|s| s.exclusive_ns), Some(40));
    }

    #[test]
    fn folded_round_trips() {
        let p = profile_events(&sample());
        let folded = to_folded(&p);
        assert_eq!(folded, "root 50\nroot;a 40\nroot;a;leaf 10\n");
        let parsed = parse_folded(&folded).expect("parse");
        assert_eq!(parsed.len(), p.paths.len());
        for (path, stats) in &p.paths {
            assert_eq!(parsed.get(path), Some(&stats.exclusive_ns), "{path}");
        }
        // Total exclusive time survives the round trip.
        assert_eq!(parsed.values().sum::<u64>(), p.root_ns);
    }

    #[test]
    fn folded_parser_rejects_malformed_lines() {
        assert!(parse_folded("no_value\n").is_err());
        assert!(parse_folded("a;b x\n").is_err());
        assert!(parse_folded(" 5\n").is_err());
        assert!(parse_folded("a 1\na 2\n").is_err());
        assert_eq!(parse_folded("").expect("empty ok").len(), 0);
    }

    #[test]
    fn frames_are_sanitised_for_the_folded_format() {
        let p = profile_events(&[span(1, None, "odd name;x", 0, 5)]);
        let folded = to_folded(&p);
        assert_eq!(folded, "odd_name:x 5\n");
        parse_folded(&folded).expect("sanitised frames parse");
    }

    #[test]
    fn hot_paths_sort_by_exclusive_and_render() {
        let p = profile_events(&sample());
        let hot = p.hot_paths(2);
        assert_eq!(hot[0].0, "root");
        assert_eq!(hot[1].0, "root;a");
        let table = p.render_hot_paths(10);
        assert!(table.contains("span path"), "{table}");
        assert!(table.contains("root;a;leaf"), "{table}");
        assert!(table.contains("exclusive"), "{table}");
    }
}
