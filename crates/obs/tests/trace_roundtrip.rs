//! Satellite (c): span nesting/ordering invariants and JSONL schema
//! round-trip under the mock clock — a fixed workload must trace
//! byte-identically on every run.

use std::sync::Arc;

use mbr_obs::{
    self as obs, parse_trace, to_jsonl, validate_trace, Counter, Gauge, MockClock, Recorder, Span,
    TraceEvent,
};

/// A fixed instrumented workload standing in for a flow run.
fn workload() {
    let root = Span::enter("flow.compose");
    {
        let _timing = Span::enter("flow.compose.timing");
        obs::counter(Counter::StaFullAnalyses, 1);
    }
    {
        let _assign = Span::enter("flow.compose.assignment");
        obs::counter(Counter::SetPartSolves, 3);
        obs::counter(Counter::SetPartNodesExplored, 17);
        obs::counter(Counter::SimplexPivots, 120);
    }
    obs::gauge(Gauge::WnsPs, -42.5);
    drop(root);
}

fn run_traced() -> Vec<TraceEvent> {
    let rec = Arc::new(Recorder::default());
    obs::with_clock(Arc::new(MockClock::new(1_000)), || {
        obs::with_sink(rec.clone(), workload)
    });
    rec.events()
}

#[test]
fn fixed_workload_traces_byte_identically() {
    let first = to_jsonl(&run_traced());
    let second = to_jsonl(&run_traced());
    assert_eq!(first, second);
    assert!(!first.is_empty());
}

#[test]
fn trace_round_trips_and_validates() {
    let events = run_traced();
    validate_trace(&events).expect("schema-valid");
    let text = to_jsonl(&events);
    let reparsed = parse_trace(&text).expect("parse");
    assert_eq!(reparsed, events);
    assert_eq!(to_jsonl(&reparsed), text);
}

#[test]
fn nesting_invariants_hold() {
    let events = run_traced();
    let spans: Vec<(u64, Option<u64>, String, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span {
                id,
                parent,
                name,
                start_ns,
                dur_ns,
                ..
            } => Some((*id, *parent, name.clone(), *start_ns, *dur_ns)),
            _ => None,
        })
        .collect();
    assert_eq!(spans.len(), 3);

    // Entry order: root (1), timing (2), assignment (3); close order:
    // timing, assignment, root.
    assert_eq!(spans[0].2, "flow.compose.timing");
    assert_eq!(spans[1].2, "flow.compose.assignment");
    assert_eq!(spans[2].2, "flow.compose");
    assert_eq!(spans[0].0, 2);
    assert_eq!(spans[1].0, 3);
    assert_eq!(spans[2].0, 1);

    // Both stages are children of the root, and nest within it.
    let (_, _, _, root_start, root_dur) = spans[2];
    for stage in &spans[..2] {
        assert_eq!(stage.1, Some(1));
        assert!(stage.3 >= root_start);
        assert!(stage.3 + stage.4 <= root_start + root_dur);
    }

    // Siblings do not overlap.
    assert!(spans[0].3 + spans[0].4 <= spans[1].3);
}

#[test]
fn counters_attach_to_their_enclosing_span() {
    let events = run_traced();
    for event in &events {
        match event {
            TraceEvent::Counter { name, span, .. } => {
                let expected = match name.as_str() {
                    "sta.full_analyses" => Some(2),
                    _ => Some(3),
                };
                assert_eq!(*span, expected, "counter {name}");
            }
            TraceEvent::Gauge { span, .. } => assert_eq!(*span, Some(1)),
            TraceEvent::Span { .. } | TraceEvent::Hist { .. } => {}
        }
    }
}
