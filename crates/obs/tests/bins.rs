//! End-to-end tests for the perf tooling binaries: `trace-validate`
//! (strict and `--truncated`), `mbr-profile` (hot paths + `.folded`
//! emission), and `mbr-perfdiff` (trace diff, bench diff, baseline gate).

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

use mbr_obs::{self as obs, parse_trace, to_jsonl, Counter, Histogram, MockClock, Recorder, Span};

fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mbr-bins-{}-{name}", std::process::id()))
}

/// A small valid serial trace: root(te.root) wrapping two children, one
/// counter and one histogram observation.
fn serial_trace() -> String {
    let rec = Arc::new(Recorder::default());
    obs::with_clock(Arc::new(MockClock::new(10)), || {
        obs::with_sink(rec.clone(), || {
            let root = Span::enter("te.root");
            {
                let _a = Span::enter("te.a");
                obs::counter(Counter::SimplexPivots, 5);
            }
            {
                let _b = Span::enter("te.b");
                obs::observe(Histogram::SetPartSolveNodes, 17);
            }
            drop(root);
        })
    });
    to_jsonl(&rec.events())
}

/// The same trace with one span-close line dropped, flight-recorder
/// style: the counter's span reference now dangles, which strict
/// validation rejects and truncated validation tolerates.
fn truncated_trace() -> String {
    let full = serial_trace();
    let lines: Vec<&str> = full.lines().collect();
    // Line order is counter, te.a close, hist, te.b close, te.root close;
    // drop the close of `te.a` so the counter references a missing span.
    let kept: Vec<&str> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| (i != 1).then_some(*l))
        .collect();
    kept.join("\n") + "\n"
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("binary spawns")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn trace_validate_strict_vs_truncated() {
    let good = temp_file("good.jsonl");
    let cut = temp_file("cut.jsonl");
    std::fs::write(&good, serial_trace()).expect("write");
    std::fs::write(&cut, truncated_trace()).expect("write");
    let bin = env!("CARGO_BIN_EXE_trace-validate");

    let out = run(bin, &[good.to_str().expect("utf-8")]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    // Strict mode rejects the truncated file; --truncated accepts it.
    let out = run(bin, &[cut.to_str().expect("utf-8")]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let out = run(bin, &["--truncated", cut.to_str().expect("utf-8")]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("truncated trace schema"), "{stdout}");

    let out = run(bin, &["--bogus", good.to_str().expect("utf-8")]);
    assert_eq!(exit_code(&out), 2, "{out:?}");

    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&cut).ok();
}

#[test]
fn profile_emits_folded_stacks_that_telescope() {
    let trace = temp_file("prof.jsonl");
    let folded = temp_file("prof.folded");
    std::fs::write(&trace, serial_trace()).expect("write");
    let bin = env!("CARGO_BIN_EXE_mbr-profile");

    let out = run(
        bin,
        &[
            trace.to_str().expect("utf-8"),
            "--top",
            "10",
            "--folded",
            folded.to_str().expect("utf-8"),
        ],
    );
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("te.root"), "{stdout}");
    assert!(stdout.contains("exclusive"), "{stdout}");

    // The folded file parses, and in a serial trace the exclusive values
    // sum to the root span's duration.
    let text = std::fs::read_to_string(&folded).expect("folded written");
    let stacks = mbr_obs::profile::parse_folded(&text).expect("folded parses");
    let events = parse_trace(&std::fs::read_to_string(&trace).expect("read")).expect("parse");
    let root_dur = events
        .iter()
        .find_map(|e| match e {
            mbr_obs::TraceEvent::Span {
                name,
                dur_ns,
                parent: None,
                ..
            } if name == "te.root" => Some(*dur_ns),
            _ => None,
        })
        .expect("root span present");
    assert_eq!(stacks.values().sum::<u64>(), root_dur);

    // Truncated traces profile only under --truncated.
    let cut = temp_file("prof-cut.jsonl");
    std::fs::write(&cut, truncated_trace()).expect("write");
    assert_eq!(exit_code(&run(bin, &[cut.to_str().expect("utf-8")])), 1);
    assert_eq!(
        exit_code(&run(bin, &["--truncated", cut.to_str().expect("utf-8")])),
        0
    );

    for p in [&trace, &folded, &cut] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn perfdiff_traces_and_baseline_gate() {
    let a = temp_file("a.jsonl");
    std::fs::write(&a, serial_trace()).expect("write");
    let bin = env!("CARGO_BIN_EXE_mbr-perfdiff");

    // A trace against itself is clean.
    let out = run(
        bin,
        &[a.to_str().expect("utf-8"), a.to_str().expect("utf-8")],
    );
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("0 failure(s)"), "{stdout}");

    // A counter drift fails with a named counter.
    let b = temp_file("b.jsonl");
    std::fs::write(&b, serial_trace().replace("\"value\":5", "\"value\":6")).expect("write");
    let out = run(
        bin,
        &[a.to_str().expect("utf-8"), b.to_str().expect("utf-8")],
    );
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("lp.simplex.pivots"), "{stdout}");

    // Baseline write + gate: clean against itself, fails against the
    // regressed trace, and the report lands in --out.
    let baseline = temp_file("baseline.json");
    let report_path = temp_file("report.txt");
    let out = run(
        bin,
        &[
            "--write-baseline",
            baseline.to_str().expect("utf-8"),
            a.to_str().expect("utf-8"),
        ],
    );
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let out = run(
        bin,
        &[
            "--baseline",
            baseline.to_str().expect("utf-8"),
            a.to_str().expect("utf-8"),
        ],
    );
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let out = run(
        bin,
        &[
            "--baseline",
            baseline.to_str().expect("utf-8"),
            b.to_str().expect("utf-8"),
            "--out",
            report_path.to_str().expect("utf-8"),
        ],
    );
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let report = std::fs::read_to_string(&report_path).expect("report written");
    assert!(report.contains("regressed"), "{report}");

    // Usage errors exit 2.
    let out = run(bin, &[a.to_str().expect("utf-8")]);
    assert_eq!(exit_code(&out), 2, "{out:?}");

    for p in [&a, &b, &baseline, &report_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn perfdiff_bench_files() {
    let bench_a = temp_file("bench-a.json");
    let bench_b = temp_file("bench-b.json");
    let text = "{\"suite\":\"s\",\"unit\":\"ns\",\"results\":[{\"name\":\"d1\",\"samples\":3,\
                \"median_ns\":1000,\"mean_ns\":1000,\"min_ns\":900,\"max_ns\":1100,\
                \"counters\":{\"lp.simplex.pivots\":42}}]}\n";
    std::fs::write(&bench_a, text).expect("write");
    std::fs::write(&bench_b, text.replace("42", "43")).expect("write");
    let bin = env!("CARGO_BIN_EXE_mbr-perfdiff");

    let a = bench_a.to_str().expect("utf-8");
    let b = bench_b.to_str().expect("utf-8");
    assert_eq!(exit_code(&run(bin, &[a, a])), 0);
    let out = run(bin, &[a, b]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("lp.simplex.pivots"), "{stdout}");

    std::fs::remove_file(&bench_a).ok();
    std::fs::remove_file(&bench_b).ok();
}
