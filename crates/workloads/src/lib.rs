#![warn(missing_docs)]
//! Synthetic placed designs calibrated to the DAC'17 industrial benchmarks.
//!
//! The paper evaluates on five proprietary 28 nm designs (D1–D5 in Table 1)
//! that are "rich in MBRs after logic synthesis". Those netlists cannot be
//! redistributed, so this crate generates the closest synthetic equivalents:
//! pipelined, clustered, clock-gated register fabrics whose *distributions*
//! match what the composition algorithm actually consumes —
//!
//! * register count and the composable fraction (designer-fixed registers,
//!   classes at max width),
//! * the initial MBR bit-width mix (Fig. 5 "before" bars; D4 is 8-bit-heavy
//!   and therefore barely composable, D2/D5 are 1-bit-heavy),
//! * clock gating groups per placement cluster (functional-unit gating),
//! * scan partitions with a slice of ordered sections,
//! * a realistic slack profile: pipeline stages flow left-to-right across
//!   the die, most hops are short, some cross clusters and fail timing
//!   (the paper reports ≈ 38 % failing endpoints on these pre-optimization
//!   databases).
//!
//! Everything is deterministic per [`DesignSpec::seed`]. The presets
//! [`d1`]..[`d5`] are scaled ~18× down from Table 1's register counts so
//! the full suite runs in seconds; `EXPERIMENTS.md` records the mapping.
//!
//! # Examples
//!
//! ```
//! use mbr_liberty::standard_library;
//! use mbr_workloads::d1;
//!
//! let lib = standard_library();
//! let design = d1().generate(&lib);
//! assert!(design.live_register_count() > 1_000);
//! assert!(design.validate().is_empty());
//! ```

use std::ops::RangeInclusive;

use mbr_core::{Eco, EcoScript};
use mbr_geom::{Dbu, Point, Rect};
use mbr_liberty::{ClassId, Library};
use mbr_netlist::{CombModel, Design, InstId, PinKind, RegisterAttrs, ScanInfo};
use mbr_obs::{SpanHandle, TaskObs};
use mbr_test::Rng;

/// Parameters of a synthetic design. Build one of the presets with
/// [`d1`]..[`d5`] or customize the fields directly.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpec {
    /// Design name.
    pub name: String,
    /// RNG seed; equal specs generate identical designs.
    pub seed: u64,
    /// Placement/gating clusters per axis (total clusters = grid²).
    pub cluster_grid: usize,
    /// Register groups (synthesized words) per cluster.
    pub groups_per_cluster: usize,
    /// Registers per group.
    pub regs_per_group: RangeInclusive<usize>,
    /// Probability mass over initial register widths {1, 2, 4, 8}.
    pub width_mix: [f64; 4],
    /// Fraction of groups the "designer" marked fixed (non-composable).
    pub fixed_fraction: f64,
    /// Fraction of groups using the scan register class.
    pub scan_fraction: f64,
    /// Of the scan groups, the fraction placed in ordered scan sections.
    pub ordered_scan_fraction: f64,
    /// Maximum extra buffers inserted on a data path (delay diversity).
    pub extra_buffer_depth: usize,
    /// Placement-area utilization target (0–1).
    pub utilization: f64,
    /// Suggested clock period for timing analysis, ps (tuned so the base
    /// design shows a realistic failing-endpoint ratio).
    pub clock_period: f64,
    /// Number of clock domains (≥ 1). Clusters are assigned round-robin;
    /// composition never merges across domains.
    pub clock_domains: usize,
    /// Wire R/C multiplier for the suggested delay model. The presets are
    /// scaled ~18× down from the paper's designs in register count (~4× in
    /// die side), so unit-length parasitics are scaled *up* to restore the
    /// paper's ratio of slack-derived feasible-region size to die size —
    /// the quantity that shapes the compatibility graph.
    pub wire_scale: f64,
}

impl DesignSpec {
    /// Generates the placed design against `lib` (normally
    /// [`mbr_liberty::standard_library`]).
    ///
    /// The result is structurally valid ([`Design::validate`] is empty) and
    /// deterministic in `seed`.
    pub fn generate(&self, lib: &Library) -> Design {
        Generator::new(self, lib).run()
    }
}

/// D1: balanced width mix, ~62 % composable (Table 1: 29 416 regs, 18 332
/// composable, −38 % total / −61 % composable after composition).
pub fn d1() -> DesignSpec {
    DesignSpec {
        name: "d1".into(),
        seed: 0xD1,
        cluster_grid: 4,
        groups_per_cluster: 17,
        regs_per_group: 4..=8,
        width_mix: [0.42, 0.22, 0.20, 0.16],
        fixed_fraction: 0.14,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.20,
        extra_buffer_depth: 4,
        utilization: 0.40,
        clock_period: 460.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

/// D2: 1-bit heavy, the most composable design (Table 1: 37 401 regs, 75 %
/// composable, the largest total-register saving at −39 %).
pub fn d2() -> DesignSpec {
    DesignSpec {
        name: "d2".into(),
        seed: 0xD2,
        cluster_grid: 4,
        groups_per_cluster: 22,
        regs_per_group: 4..=9,
        width_mix: [0.52, 0.24, 0.14, 0.10],
        fixed_fraction: 0.10,
        scan_fraction: 0.30,
        ordered_scan_fraction: 0.15,
        extra_buffer_depth: 4,
        utilization: 0.40,
        clock_period: 460.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

/// D3: mid-size mix with more 4-bit content (Table 1: 34 519 regs, 63 %
/// composable, −26 % total).
pub fn d3() -> DesignSpec {
    DesignSpec {
        name: "d3".into(),
        seed: 0xD3,
        cluster_grid: 5,
        groups_per_cluster: 13,
        regs_per_group: 4..=8,
        width_mix: [0.36, 0.24, 0.25, 0.15],
        fixed_fraction: 0.16,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.25,
        extra_buffer_depth: 5,
        utilization: 0.40,
        clock_period: 440.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

/// D4: already 8-bit dominated after synthesis — the paper's hardest case
/// (Table 1: 50 392 regs, only 44 % composable, −15 % total; motivates the
/// future-work decomposition).
pub fn d4() -> DesignSpec {
    DesignSpec {
        name: "d4".into(),
        seed: 0xD4,
        cluster_grid: 5,
        groups_per_cluster: 18,
        regs_per_group: 4..=8,
        width_mix: [0.20, 0.12, 0.18, 0.50],
        fixed_fraction: 0.12,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.20,
        extra_buffer_depth: 4,
        utilization: 0.40,
        clock_period: 460.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

/// D5: like D2 but smaller clusters and more ordered scan (Table 1: 34 519
/// regs, 63 % composable, −33 % total / −54 % composable).
pub fn d5() -> DesignSpec {
    DesignSpec {
        name: "d5".into(),
        seed: 0xD5,
        cluster_grid: 5,
        groups_per_cluster: 13,
        regs_per_group: 4..=8,
        width_mix: [0.46, 0.24, 0.18, 0.12],
        fixed_fraction: 0.15,
        scan_fraction: 0.35,
        ordered_scan_fraction: 0.30,
        extra_buffer_depth: 5,
        utilization: 0.40,
        clock_period: 420.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

/// All five paper-calibrated presets, in order. These are the ~18×
/// down-scaled suite every tier-1 test sweeps; the paper-scale presets
/// ([`d6`]..[`d8`]) live in [`paper_presets`] so nothing iterates into a
/// 500k-register generate by accident.
pub fn all_presets() -> Vec<DesignSpec> {
    vec![d1(), d2(), d3(), d4(), d5()]
}

/// D6: full paper scale (≈20k registers, the Table 1 ballpark), 1-bit
/// heavy like D2 so the set-partitioning load is maximal. The die grows
/// ~3.5× over the scaled suite, so `wire_scale` drops to keep the paper's
/// feasible-region-to-die ratio — the quantity that shapes compatibility
/// density — rather than inheriting the scaled-up parasitics of d1–d5.
pub fn d6() -> DesignSpec {
    DesignSpec {
        name: "d6".into(),
        seed: 0xD6,
        cluster_grid: 8,
        groups_per_cluster: 52,
        regs_per_group: 4..=8,
        width_mix: [0.52, 0.24, 0.14, 0.10],
        fixed_fraction: 0.10,
        scan_fraction: 0.30,
        ordered_scan_fraction: 0.15,
        extra_buffer_depth: 4,
        utilization: 0.40,
        clock_period: 460.0,
        clock_domains: 1,
        wire_scale: 0.3,
    }
}

/// D7: 5× beyond the paper (≈100k registers), balanced width mix.
pub fn d7() -> DesignSpec {
    DesignSpec {
        name: "d7".into(),
        seed: 0xD7,
        cluster_grid: 12,
        groups_per_cluster: 116,
        regs_per_group: 4..=8,
        width_mix: [0.42, 0.22, 0.20, 0.16],
        fixed_fraction: 0.14,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.20,
        extra_buffer_depth: 4,
        utilization: 0.40,
        clock_period: 460.0,
        clock_domains: 2,
        wire_scale: 0.13,
    }
}

/// D8: ≈500k registers — an order of magnitude past Table 1, for probing
/// where the bounded solver and the enumeration budgets saturate.
pub fn d8() -> DesignSpec {
    DesignSpec {
        name: "d8".into(),
        seed: 0xD8,
        cluster_grid: 20,
        groups_per_cluster: 208,
        regs_per_group: 4..=8,
        width_mix: [0.46, 0.24, 0.18, 0.12],
        fixed_fraction: 0.12,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.20,
        extra_buffer_depth: 4,
        utilization: 0.40,
        clock_period: 460.0,
        clock_domains: 4,
        wire_scale: 0.06,
    }
}

/// The paper-scale presets [`d6`]..[`d8`], in order. Deliberately not part
/// of [`all_presets`]: generating d8 alone takes longer than the whole
/// scaled suite, so these are opt-in (scale tests, the `scale` bench).
pub fn paper_presets() -> Vec<DesignSpec> {
    vec![d6(), d7(), d8()]
}

/// Runs `f` once per preset on the parallel executor, returning results in
/// preset order with each run's buffered observability already replayed on
/// the calling thread. The preset sweeps are independent flows, so they run
/// concurrently; replay-in-order keeps `MBR_TRACE` output and `--report`
/// summaries identical at every thread count.
pub fn sweep_presets<R: Send>(
    presets: &[DesignSpec],
    f: impl Fn(&DesignSpec) -> R + Sync,
) -> Vec<R> {
    let handle = SpanHandle::current();
    let results = mbr_par::par_map(mbr_par::thread_count(), presets, |_, spec| {
        TaskObs::capture(&handle, || f(spec))
    });
    results
        .into_iter()
        .map(|(r, task_obs)| {
            task_obs.replay(&handle);
            r
        })
        .collect()
}

/// A deterministic, non-structural ECO script against `design` (which must
/// be `spec.generate(lib)` or an un-mutated copy of it): placement jitters
/// of a few microns snapped to the row/site grid, with an occasional drive
/// retarget within the same cell class and width. Non-structural on purpose
/// — these are the ECOs a session re-composes incrementally, so the `incr`
/// bench measures reuse rather than rebuild.
///
/// Seeded from `spec.seed`, so equal specs give equal scripts.
///
/// # Panics
///
/// Panics if `design` has no movable (live, non-fixed) registers.
pub fn eco_script_for(spec: &DesignSpec, design: &Design, lib: &Library, len: usize) -> EcoScript {
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0xEC0);
    let movable: Vec<InstId> = design
        .registers()
        .filter(|(_, inst)| !inst.register_attrs().expect("register").fixed)
        .map(|(id, _)| id)
        .collect();
    assert!(!movable.is_empty(), "no movable registers in {}", spec.name);
    let die = design.die();
    let (site, row) = (100, 600);
    let mut ecos = Vec::with_capacity(len);
    for _ in 0..len {
        let inst = design.inst(movable[rng.gen_range(0..movable.len())]);
        if rng.gen_bool(0.25) {
            // Retarget: a different drive grade of the same class and width
            // (the only swap `resize_register` accepts), keeping the scan
            // style so chain connectivity stays well-formed.
            let cell = lib.cell(inst.register_cell().expect("register"));
            let variants: Vec<_> = lib
                .cells_of(cell.class, cell.width)
                .filter(|&c| {
                    let v = lib.cell(c);
                    v.scan_style == cell.scan_style && v.name != cell.name
                })
                .collect();
            if !variants.is_empty() {
                let pick = variants[rng.gen_range(0..variants.len())];
                ecos.push(Eco::Retarget {
                    name: inst.name.clone(),
                    cell: lib.cell(pick).name.clone(),
                });
                continue;
            }
        }
        // Move: jitter up to ±5 µm, clamped into the die and snapped to the
        // site/row grid so un-merged registers stay legally placed.
        let dx = rng.gen_range(-50i64..=50) * site;
        let dy = rng.gen_range(-8i64..=8) * row;
        let snap = |v: i64, lo: i64, hi: i64, step: i64| {
            let v = v.clamp(lo, hi);
            lo + (v - lo) / step * step
        };
        let x = snap(inst.loc.x + dx, die.lo().x, die.hi().x - inst.width, site);
        let y = snap(inst.loc.y + dy, die.lo().y, die.hi().y - inst.height, row);
        ecos.push(Eco::Move {
            name: inst.name.clone(),
            x,
            y,
        });
    }
    EcoScript { ecos }
}

// ---------------------------------------------------------------------
// Generator internals
// ---------------------------------------------------------------------

struct GroupSpec {
    cluster: usize,
    class: ClassId,
    widths: Vec<u8>,
    fixed: bool,
    scan: Option<ScanGroup>,
}

struct ScanGroup {
    partition: u16,
    /// Ordered section id when the group's chain order is constrained.
    section: Option<u32>,
}

struct Generator<'a> {
    spec: &'a DesignSpec,
    lib: &'a Library,
    rng: Rng,
}

impl<'a> Generator<'a> {
    fn new(spec: &'a DesignSpec, lib: &'a Library) -> Self {
        Generator {
            spec,
            lib,
            rng: Rng::seed_from_u64(spec.seed),
        }
    }

    fn sample_width(&mut self) -> u8 {
        let widths = [1u8, 2, 4, 8];
        let total: f64 = self.spec.width_mix.iter().sum();
        let mut roll = self.rng.f64() * total;
        for (i, &w) in widths.iter().enumerate() {
            roll -= self.spec.width_mix[i];
            if roll <= 0.0 {
                return w;
            }
        }
        8
    }

    fn pick_class(&mut self, scan: bool) -> ClassId {
        let name = if scan {
            "SDFF_R"
        } else {
            match self.rng.gen_range(0..10) {
                0..=4 => "DFF_R",
                5..=6 => "DFF",
                7..=8 => "DFF_EN_R",
                _ => "DFF_RS",
            }
        };
        self.lib
            .class_by_name(name)
            .expect("standard library class")
    }

    fn run(mut self) -> Design {
        let spec = self.spec;
        let clusters = spec.cluster_grid * spec.cluster_grid;

        // ---- plan the register groups ----
        let mut groups: Vec<GroupSpec> = Vec::new();
        let mut next_section = 0u32;
        for cluster in 0..clusters {
            for _ in 0..spec.groups_per_cluster {
                let scan = self.rng.f64() < spec.scan_fraction;
                let class = self.pick_class(scan);
                let n = self.rng.gen_range(spec.regs_per_group.clone());
                let widths: Vec<u8> = (0..n).map(|_| self.sample_width()).collect();
                let scan = scan.then(|| {
                    let ordered = self.rng.f64() < spec.ordered_scan_fraction;
                    ScanGroup {
                        partition: (cluster % 4) as u16,
                        section: ordered.then(|| {
                            next_section += 1;
                            next_section
                        }),
                    }
                });
                groups.push(GroupSpec {
                    cluster,
                    class,
                    widths,
                    fixed: self.rng.f64() < spec.fixed_fraction,
                    scan,
                });
            }
        }

        // ---- size the die from the planned area ----
        let reg_area: f64 = groups
            .iter()
            .flat_map(|g| g.widths.iter())
            .map(|&w| {
                // Representative area of a w-bit cell.
                let class = self.lib.class_by_name("DFF_R").expect("class");
                self.lib
                    .cells_of(class, w)
                    .map(|id| self.lib.cell(id).area)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        let total_bits: usize = groups.iter().map(|g| g.widths.len()).sum::<usize>();
        let comb_area = total_bits as f64 * 2.5 * CombModel::nand2().area;
        let die_area_um2 = (reg_area + comb_area) / spec.utilization;
        // 1 µm² = 1e6 DBU²; square die rounded to whole rows.
        let side = ((die_area_um2 * 1e6).sqrt() as Dbu / 600) * 600 + 600;
        let die = Rect::from_origin_size(Point::ORIGIN, side, side);
        let mut design = Design::new(spec.name.clone(), die);

        // ---- shared nets and ports ----
        let domains = spec.clock_domains.max(1);
        let clocks: Vec<_> = (0..domains)
            .map(|k| {
                let net = design.add_net(format!("clk{k}"));
                let port = design.add_input_port(
                    format!("CLK{k}"),
                    Point::new(0, side / 2 - 600 * k as i64 * 2),
                    0.5,
                );
                design.connect(design.inst(port).pins[0], net);
                net
            })
            .collect();
        let rst = design.add_net("rst_n");
        let rst_port = design.add_input_port("RST", Point::new(0, side / 2 + 600), 1.0);
        design.connect(design.inst(rst_port).pins[0], rst);
        let set = design.add_net("set_n");
        let set_port = design.add_input_port("SET", Point::new(0, side / 2 - 600), 1.0);
        design.connect(design.inst(set_port).pins[0], set);
        let se = design.add_net("scan_en");
        let se_port = design.add_input_port("SE", Point::new(0, side / 2 + 1_200), 1.0);
        design.connect(design.inst(se_port).pins[0], se);
        let nand = design.add_comb_model(CombModel::nand2());
        let buf = design.add_comb_model(CombModel::buffer());

        // Per-cluster enable nets for DFF_EN_R groups.
        let enables: Vec<_> = (0..clusters)
            .map(|c| {
                let net = design.add_net(format!("en_{c}"));
                let port = design.add_input_port(
                    format!("EN{c}"),
                    Point::new(0, 1_800 + 600 * c as i64),
                    1.0,
                );
                design.connect(design.inst(port).pins[0], net);
                net
            })
            .collect();

        // ---- place the registers cluster by cluster ----
        let grid = spec.cluster_grid as i64;
        let cluster_w = side / grid;
        let cluster_h = side / grid;

        // All register instances by cluster column (pipeline stage).
        let mut stage_regs: Vec<Vec<(InstId, u8)>> = vec![Vec::new(); spec.cluster_grid];
        let mut reg_insts: Vec<(InstId, usize)> = Vec::new(); // (inst, cluster)

        for (gi, group) in groups.iter().enumerate() {
            let cluster = group.cluster;
            let column = cluster % spec.cluster_grid;
            let cluster_x0 = (cluster as i64 % grid) * cluster_w;
            let cluster_y0 = (cluster as i64 / grid) * cluster_h;
            // Each word occupies a short run along a row (datapath slice)
            // with logic-sized gaps between its registers; words land on
            // random rows of the cluster, so nearby words overlap within
            // the composition window while far ones do not.
            let rows_in_cluster = (cluster_h / 600 - 2).max(1);
            let mut row_y = cluster_y0 + 600 * (1 + self.rng.gen_range(0..rows_in_cluster));
            let mut x = cluster_x0 + 600 + self.rng.gen_range(0..60) as i64 * 100;
            for (ri, &width) in group.widths.iter().enumerate() {
                // Post-optimization designs carry a drive-strength mix; the
                // MBR mapper must honour the strongest member, and sizing
                // later relaxes it where slack allows.
                let strength = match self.rng.gen_range(0..10) {
                    0..=4 => 1.0,
                    5..=7 => 2.0,
                    _ => 4.0,
                };
                let base_r = self
                    .lib
                    .drive_resistance(group.class, mbr_liberty::DriveClass::X1)
                    .expect("X1 exists");
                let cell = self
                    .lib
                    .select_cell(group.class, width, Some(base_r / strength + 1e-9), false)
                    .expect("standard library covers all widths");
                let cell_def = self.lib.cell(cell);
                // Logic-sized gap to the previous register of the word.
                let gap = (4 + self.rng.gen_range(0..10) as i64) * 100;
                if x + gap + cell_def.footprint_w > cluster_x0 + cluster_w - 600 {
                    row_y += 600;
                    x = cluster_x0 + 600 + self.rng.gen_range(0..8) as i64 * 100;
                }
                if row_y + 600 > cluster_y0 + cluster_h {
                    row_y = cluster_y0 + 600; // extremely dense: wrap
                }
                x += gap;
                let loc = Point::new(x, row_y);
                x += cell_def.footprint_w;

                let class_def = self.lib.class(group.class);
                let mut attrs = RegisterAttrs::clocked(clocks[cluster % domains]);
                attrs.gate_group = cluster as u32;
                if class_def.has_reset {
                    attrs.reset = Some(rst);
                }
                if class_def.has_set {
                    attrs.set = Some(set);
                }
                if class_def.has_enable {
                    attrs.enable = Some(enables[cluster]);
                }
                if class_def.has_scan {
                    attrs.scan_enable = Some(se);
                }
                attrs.fixed = group.fixed;
                if let Some(scan) = &group.scan {
                    attrs.scan = Some(ScanInfo {
                        partition: scan.partition,
                        section: scan.section.map(|s| (s, ri as u32)),
                    });
                }
                let inst = design.add_register(format!("g{gi}_r{ri}"), self.lib, cell, loc, attrs);
                stage_regs[column].push((inst, width));
                reg_insts.push((inst, cluster));
            }
        }

        // ---- wire the pipeline ----
        // Every D pin is driven by a NAND2 (optionally behind a buffer
        // chain) whose inputs come from Q pins of the previous column, or
        // from input ports at column 0. Q pins feed those gates and, for
        // the last column, output ports.
        let mut gate_count = 0usize;
        let mut port_count = 0usize;
        let columns = spec.cluster_grid;
        // Pre-collect Q pins per column, bucketed by grid row so dataflow
        // can stay mostly row-local (real floorplans route short; rare long
        // hops provide the critical tail).
        let rows = spec.cluster_grid;
        let mut q_pins: Vec<Vec<mbr_netlist::PinId>> = vec![Vec::new(); columns];
        let mut q_pins_by_row: Vec<Vec<Vec<mbr_netlist::PinId>>> =
            vec![vec![Vec::new(); rows]; columns];
        for (col, regs) in stage_regs.iter().enumerate() {
            for &(inst, width) in regs {
                let row =
                    ((design.inst(inst).loc.y / cluster_h).clamp(0, rows as i64 - 1)) as usize;
                for b in 0..width {
                    let q = design
                        .find_pin(inst, PinKind::Q(b))
                        .expect("register Q pin");
                    q_pins[col].push(q);
                    q_pins_by_row[col][row].push(q);
                }
            }
        }
        // Q nets, created lazily.
        let mut q_nets: std::collections::HashMap<mbr_netlist::PinId, mbr_netlist::NetId> =
            std::collections::HashMap::new();

        let mut primary_inputs: Vec<mbr_netlist::NetId> = Vec::new();
        for i in 0..8 {
            let net = design.add_net(format!("pi_{i}"));
            let port = design.add_input_port(format!("PI{i}"), Point::new(0, 3_000 + 600 * i), 2.0);
            design.connect(design.inst(port).pins[0], net);
            primary_inputs.push(net);
        }

        for col in 0..columns {
            let regs = stage_regs[col].clone();
            for (inst, width) in regs {
                let near = design.inst(inst).loc;
                let my_row = ((near.y / cluster_h).clamp(0, rows as i64 - 1)) as usize;
                for b in 0..width {
                    let d_pin = design.find_pin(inst, PinKind::D(b)).expect("D pin");
                    // Driving gate placed near the register.
                    let gloc = Point::new(
                        (near.x - 600 - self.rng.gen_range(0..10) as i64 * 100).max(0),
                        (near.y - 600).max(0),
                    );
                    let gate = design.add_comb(format!("gd{gate_count}"), nand, gloc);
                    gate_count += 1;
                    let gout = design.find_pin(gate, PinKind::GateOut).expect("out");

                    // Source signals.
                    for input in 0..2u8 {
                        let ipin = design.find_pin(gate, PinKind::GateIn(input)).expect("in");
                        let src_net = if col == 0 {
                            primary_inputs[self.rng.gen_range(0..primary_inputs.len())]
                        } else {
                            // 85 % row-local hop, 15 % anywhere in the
                            // previous column (long critical paths).
                            let local = &q_pins_by_row[col - 1][my_row];
                            let prev: &[mbr_netlist::PinId] =
                                if !local.is_empty() && self.rng.f64() < 0.85 {
                                    local
                                } else {
                                    &q_pins[col - 1]
                                };
                            let q = prev[self.rng.gen_range(0..prev.len())];
                            *q_nets.entry(q).or_insert_with(|| {
                                let net = design.add_net(format!("q_{}", q.index()));
                                design.connect(q, net);
                                net
                            })
                        };
                        design.connect(ipin, src_net);
                    }

                    // Optional buffer chain between gate and D for depth
                    // diversity (long paths).
                    let depth = if self.rng.f64() < 0.3 {
                        self.rng.gen_range(1..=spec.extra_buffer_depth.max(1))
                    } else {
                        0
                    };
                    let mut driver_out = gout;
                    let mut bx = gloc.x;
                    for _ in 0..depth {
                        bx = (bx + 1_000).min(side - 600);
                        let binst =
                            design.add_comb(format!("gb{gate_count}"), buf, Point::new(bx, gloc.y));
                        gate_count += 1;
                        let bin = design.find_pin(binst, PinKind::GateIn(0)).expect("in");
                        let net = design.add_net(format!("bn{gate_count}"));
                        design.connect(driver_out, net);
                        design.connect(bin, net);
                        driver_out = design.find_pin(binst, PinKind::GateOut).expect("out");
                    }
                    let dnet = design.add_net(format!("dn{gate_count}_{b}"));
                    design.connect(driver_out, dnet);
                    design.connect(d_pin, dnet);
                }
            }
        }

        // Last-column Q pins drive output ports.
        let last = q_pins[columns - 1].clone();
        for q in last {
            let net = *q_nets.entry(q).or_insert_with(|| {
                let n = design.add_net(format!("q_{}", q.index()));
                design.connect(q, n);
                n
            });
            // Only give a port to nets without one yet.
            if design.net_sinks(net).next().is_none() {
                let port = design.add_output_port(
                    format!("PO{port_count}"),
                    Point::new(side, 3_000 + 600 * (port_count as i64 % 64)),
                    1.5,
                );
                port_count += 1;
                design.connect(design.inst(port).pins[0], net);
            }
        }

        design
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbr_liberty::standard_library;

    #[test]
    fn eco_scripts_are_deterministic_and_round_trip() {
        let lib = standard_library();
        let spec = d1();
        let design = spec.generate(&lib);
        let a = eco_script_for(&spec, &design, &lib, 24);
        let b = eco_script_for(&spec, &design, &lib, 24);
        assert_eq!(a, b);
        assert_eq!(a.ecos.len(), 24);
        // Non-structural by construction, and survives the text format.
        assert!(a.ecos.iter().all(|e| !e.is_structural()));
        assert_eq!(EcoScript::parse(&a.to_string()).expect("parses"), a);
        // Both profiles show up at this length.
        assert!(a.ecos.iter().any(|e| matches!(e, Eco::Move { .. })));
        assert!(a.ecos.iter().any(|e| matches!(e, Eco::Retarget { .. })));
    }

    #[test]
    fn sweep_runs_every_preset_in_order() {
        let presets = all_presets();
        let names = sweep_presets(&presets, |spec| spec.name.clone());
        let expect: Vec<String> = presets.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn d1_is_deterministic_and_valid() {
        let lib = standard_library();
        let a = d1().generate(&lib);
        let b = d1().generate(&lib);
        assert_eq!(a.live_register_count(), b.live_register_count());
        assert_eq!(a.wirelength(), b.wirelength());
        assert!(
            a.validate().is_empty(),
            "{:?}",
            &a.validate()[..5.min(a.validate().len())]
        );
    }

    #[test]
    fn presets_hit_their_register_budgets() {
        let lib = standard_library();
        for spec in all_presets() {
            let d = spec.generate(&lib);
            let regs = d.live_register_count();
            assert!(
                (800..4_000).contains(&regs),
                "{}: {regs} registers out of the expected band",
                spec.name
            );
        }
    }

    #[test]
    fn paper_presets_hit_paper_scale() {
        // d6 is cheap enough to generate in tier-1; d7/d8 are budgeted by
        // arithmetic only (generation is the scale tests' job).
        let lib = standard_library();
        let d = d6().generate(&lib);
        let regs = d.live_register_count();
        assert!(
            (17_000..24_000).contains(&regs),
            "d6 must sit at the paper's ≈20k registers, got {regs}"
        );
        let expected = |s: &DesignSpec| {
            let mean = (s.regs_per_group.start() + s.regs_per_group.end()) / 2;
            s.cluster_grid * s.cluster_grid * s.groups_per_cluster * mean
        };
        assert!((90_000..115_000).contains(&expected(&d7())));
        assert!((450_000..550_000).contains(&expected(&d8())));
        let names: Vec<_> = paper_presets().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["d6", "d7", "d8"]);
    }

    #[test]
    fn d4_is_eight_bit_heavy_and_less_composable() {
        let lib = standard_library();
        let d4_design = d4().generate(&lib);
        let d2_design = d2().generate(&lib);
        let frac8 = |d: &Design| {
            let total = d.live_register_count() as f64;
            let eights = d
                .registers()
                .filter(|&(id, _)| d.register_width(id) == 8)
                .count() as f64;
            eights / total
        };
        assert!(
            frac8(&d4_design) > 0.4,
            "d4 should be 8-bit heavy: {}",
            frac8(&d4_design)
        );
        assert!(
            frac8(&d2_design) < 0.2,
            "d2 is 1-bit heavy: {}",
            frac8(&d2_design)
        );
    }

    #[test]
    fn different_seeds_give_different_designs() {
        let lib = standard_library();
        let mut spec = d1();
        let a = spec.generate(&lib);
        spec.seed = 12345;
        let b = spec.generate(&lib);
        assert_ne!(a.wirelength(), b.wirelength());
    }

    #[test]
    fn designs_have_scan_and_gating_diversity() {
        let lib = standard_library();
        let d = d5().generate(&lib);
        let mut gate_groups = std::collections::HashSet::new();
        let mut scan_parts = std::collections::HashSet::new();
        let mut ordered = 0usize;
        let mut fixed = 0usize;
        for (_, inst) in d.registers() {
            let attrs = inst.register_attrs().expect("register");
            gate_groups.insert(attrs.gate_group);
            if let Some(scan) = attrs.scan {
                scan_parts.insert(scan.partition);
                if scan.section.is_some() {
                    ordered += 1;
                }
            }
            if attrs.fixed {
                fixed += 1;
            }
        }
        assert!(gate_groups.len() >= 8, "gating per cluster");
        assert!(scan_parts.len() >= 2, "multiple scan partitions");
        assert!(ordered > 0, "some ordered scan sections");
        assert!(fixed > 0, "some designer-fixed registers");
    }
}
