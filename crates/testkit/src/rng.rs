//! Seeded, dependency-free pseudo-random numbers.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64, the standard pairing: SplitMix64 decorrelates nearby seeds
//! (the workload presets use seeds like `0xD1`, `0xD2`, …) and never
//! produces the all-zero state xoshiro cannot leave.
//!
//! The API mirrors the subset of `rand` the workspace used, so call sites
//! read the same: [`Rng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::f64`], [`Rng::shuffle`].

/// Advances a SplitMix64 state and returns the next output.
///
/// Exposed because the property harness also uses it to derive independent
/// per-case seeds from one base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Anything that can produce a stream of uniform `u64`s.
///
/// Implemented by [`Rng`] and by the property harness's recording
/// [`crate::check::Source`], so range sampling works identically over both.
pub trait RandomBits {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A seeded xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose whole stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Rng { s }
    }

    /// The next uniform `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        f64_from_bits(self.u64())
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform value in `range` (`Range` or `RangeInclusive` over the
    /// primitive integer types, or an `f64` range).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = bounded(self.u64(), i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl RandomBits for Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.u64()
    }
}

/// Maps 64 raw bits to `[0, 1)`.
#[inline]
pub(crate) fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 raw bits uniformly onto `0..n` via the multiply-shift reduction.
///
/// Monotone in `bits`, which the property harness relies on: halving the
/// recorded raw choice halves the bounded value, shrinking toward a range's
/// lower bound.
#[inline]
pub(crate) fn bounded(bits: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    (((bits as u128) * (n as u128)) >> 64) as u64
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<S: RandomBits>(self, source: &mut S) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<S: RandomBits>(self, source: &mut S) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = bounded(source.next_u64(), span as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<S: RandomBits>(self, source: &mut S) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end as i128).wrapping_sub(start as i128) as u128) + 1;
                if span > u64::MAX as u128 {
                    return source.next_u64() as $t;
                }
                let off = bounded(source.next_u64(), span as u64) as i128;
                ((start as i128) + off) as $t
            }
        }
    )*}
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<S: RandomBits>(self, source: &mut S) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64_from_bits(source.next_u64()) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert!((0..10).any(|_| a.u64() != b.u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..75);
            assert!((-50..75).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x = rng.gen_range(0u64..=u64::MAX);
            let _ = x;
        }
    }

    #[test]
    fn range_samples_cover_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_is_uniformish() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..64).collect::<Vec<_>>(),
            "64 elements never stay put"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
