//! A minimal property-testing harness with internal (choice-stream)
//! shrinking.
//!
//! # Model
//!
//! Generators ([`Gen`]) draw raw 64-bit choices from a [`Source`]. During a
//! normal run the source forwards a seeded [`Rng`] and records every raw
//! draw. When a case fails, the harness shrinks the *recorded choice
//! stream* — halving individual choices and zeroing chunks (truncation) —
//! and replays the generator over the mutated stream. Because every
//! combinator (maps, flat-maps, collections) is a pure function of the
//! stream, shrinking composes through all of them for free: halving the
//! choice that produced a collection length truncates the collection,
//! halving the choice behind an integer halves its offset from the range's
//! lower bound.
//!
//! # Controls
//!
//! * `MBR_TEST_CASES` — cases per property (default 64; per-property
//!   overrides in [`props!`] still respect a larger env value),
//! * `MBR_TEST_SEED` — base seed (default fixed), printed on failure.
//!
//! A failure report names the property, the case index, the per-case seed,
//! the shrunken counterexample, and the exact `MBR_TEST_SEED=…` incantation
//! that reproduces it as case 0.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{splitmix64, RandomBits, Rng, SampleRange};

// ---------------------------------------------------------------------
// Source: recorded / replayed choice streams
// ---------------------------------------------------------------------

/// The draw source generators consume: a seeded RNG whose raw draws are
/// recorded, or a mutated recording being replayed (missing positions read
/// as zero, which is the fully-shrunk choice).
pub struct Source {
    rng: Rng,
    replay: Option<Vec<u64>>,
    pos: usize,
    record: Vec<u64>,
}

impl Source {
    /// A recording source seeded with `seed`.
    pub fn recording(seed: u64) -> Self {
        Source {
            rng: Rng::seed_from_u64(seed),
            replay: None,
            pos: 0,
            record: Vec::new(),
        }
    }

    /// A source that replays `choices`, yielding 0 past the end.
    pub fn replaying(choices: Vec<u64>, seed: u64) -> Self {
        Source {
            rng: Rng::seed_from_u64(seed),
            replay: Some(choices),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// The raw choices actually consumed by the last generation.
    pub fn into_choices(self) -> Vec<u64> {
        self.record
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        crate::rng::f64_from_bits(self.next_u64())
    }

    /// Uniform draw from an integer or float range (see
    /// [`Rng::gen_range`]).
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl RandomBits for Source {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let raw = match &self.replay {
            Some(choices) if self.pos < choices.len() => choices[self.pos],
            Some(_) => 0,
            None => self.rng.u64(),
        };
        self.pos += 1;
        self.record.push(raw);
        raw
    }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A value generator over a [`Source`].
pub trait Gen {
    /// The generated value type (`Debug` so counterexamples print).
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Maps generated values through `f` (shrinking still works: it happens
    /// on the underlying choice stream, not the mapped value). Named like
    /// proptest's combinator so migrated call sites read identically, and
    /// so `Range`'s `Iterator::map` stays unambiguous.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a second generator from each generated value and draws from
    /// it (the monadic bind).
    fn prop_flat_map<G: Gen, F: Fn(Self::Value) -> G>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Gen::prop_map`].
pub struct Map<G, F> {
    base: G,
    f: F,
}

impl<G: Gen, U: fmt::Debug, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.base.generate(src))
    }
}

/// See [`Gen::prop_flat_map`].
pub struct FlatMap<G, F> {
    base: G,
    f: F,
}

impl<G: Gen, H: Gen, F: Fn(G::Value) -> H> Gen for FlatMap<G, F> {
    type Value = H::Value;
    fn generate(&self, src: &mut Source) -> H::Value {
        (self.f)(self.base.generate(src)).generate(src)
    }
}

impl<T> Gen for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<Output = T> + Clone,
    T: fmt::Debug,
{
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        self.clone().sample(src)
    }
}

impl<T> Gen for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<Output = T> + Clone,
    T: fmt::Debug,
{
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        self.clone().sample(src)
    }
}

macro_rules! impl_gen_tuple {
    ($($g:ident.$idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}

impl_gen_tuple!(A.0);
impl_gen_tuple!(A.0, B.1);
impl_gen_tuple!(A.0, B.1, C.2);
impl_gen_tuple!(A.0, B.1, C.2, D.3);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Always generates a clone of `value` (replaces `Just`).
pub fn just<T: Clone + fmt::Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
pub struct Just<T>(T);

impl<T: Clone + fmt::Debug> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

/// Any `u64`, uniformly (replaces `any::<u64>()`).
pub fn any_u64() -> AnyU64 {
    AnyU64
}

/// See [`any_u64`].
pub struct AnyU64;

impl Gen for AnyU64 {
    type Value = u64;
    fn generate(&self, src: &mut Source) -> u64 {
        src.next_u64()
    }
}

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `elem` (replaces `prop::collection::vec`).
pub fn vec_of<G, L>(elem: G, len: L) -> VecOf<G, L>
where
    G: Gen,
    L: SampleRange<Output = usize> + Clone,
{
    VecOf { elem, len }
}

/// See [`vec_of`].
pub struct VecOf<G, L> {
    elem: G,
    len: L,
}

impl<G, L> Gen for VecOf<G, L>
where
    G: Gen,
    L: SampleRange<Output = usize> + Clone,
{
    type Value = Vec<G::Value>;
    fn generate(&self, src: &mut Source) -> Vec<G::Value> {
        let n = src.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(src)).collect()
    }
}

/// A `BTreeSet` with a target size drawn from `len` (replaces
/// `prop::collection::btree_set`). Duplicates are retried a bounded number
/// of times, so tight element ranges may yield smaller sets.
pub fn btree_set_of<G, L>(elem: G, len: L) -> BTreeSetOf<G, L>
where
    G: Gen,
    G::Value: Ord,
    L: SampleRange<Output = usize> + Clone,
{
    BTreeSetOf { elem, len }
}

/// See [`btree_set_of`].
pub struct BTreeSetOf<G, L> {
    elem: G,
    len: L,
}

impl<G, L> Gen for BTreeSetOf<G, L>
where
    G: Gen,
    G::Value: Ord,
    L: SampleRange<Output = usize> + Clone,
{
    type Value = BTreeSet<G::Value>;
    fn generate(&self, src: &mut Source) -> BTreeSet<G::Value> {
        let target = src.gen_range(self.len.clone());
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 10 {
            set.insert(self.elem.generate(src));
            attempts += 1;
        }
        set
    }
}

/// An arbitrary string of `len` characters: mostly printable ASCII, with
/// control characters and non-ASCII scalars mixed in (replaces the
/// `".{0,n}"` regex strategy for parser-robustness tests).
pub fn string_any<L>(len: L) -> AnyString<L>
where
    L: SampleRange<Output = usize> + Clone,
{
    AnyString { len }
}

/// See [`string_any`].
pub struct AnyString<L> {
    len: L,
}

impl<L> Gen for AnyString<L>
where
    L: SampleRange<Output = usize> + Clone,
{
    type Value = String;
    fn generate(&self, src: &mut Source) -> String {
        let n = src.gen_range(self.len.clone());
        let mut s = String::with_capacity(n);
        for _ in 0..n {
            let class = src.gen_range(0u32..100);
            let c = if class < 70 {
                char::from(src.gen_range(0x20u8..0x7F))
            } else if class < 82 {
                *['\n', '\t', '\r', ' ', '"', '{', '}']
                    .get(src.gen_range(0usize..7))
                    .expect("in range")
            } else if class < 92 {
                char::from(src.gen_range(0u8..0x20))
            } else {
                // Any Unicode scalar; resample the surrogate gap away.
                let raw = src.gen_range(0u32..0x11_0000);
                char::from_u32(raw).unwrap_or('\u{FFFD}')
            };
            s.push(c);
        }
        s
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Runner configuration; see [`Config::from_env`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Cases to run per property.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it.
    pub seed: u64,
    /// Budget of extra test executions spent shrinking a failure.
    pub shrink_budget: u32,
}

/// The default base seed (spells "mbrtest!"). Fixed so `cargo test` is
/// reproducible run-to-run and machine-to-machine.
pub const DEFAULT_SEED: u64 = 0x6d62_7274_6573_7421;

/// Default cases per property.
pub const DEFAULT_CASES: u32 = 64;

impl Config {
    /// Reads `MBR_TEST_CASES` and `MBR_TEST_SEED` (decimal or `0x…` hex),
    /// falling back to [`DEFAULT_CASES`] / [`DEFAULT_SEED`].
    pub fn from_env() -> Config {
        Config {
            cases: env_u64("MBR_TEST_CASES").map_or(DEFAULT_CASES, |v| v.max(1) as u32),
            seed: env_u64("MBR_TEST_SEED").unwrap_or(DEFAULT_SEED),
            shrink_budget: 2048,
        }
    }

    /// Like [`Config::from_env`], but a property asked for `cases` itself;
    /// an explicit `MBR_TEST_CASES` still wins.
    pub fn from_env_with_cases(cases: u32) -> Config {
        let mut cfg = Config::from_env();
        if env_u64("MBR_TEST_CASES").is_none() {
            cfg.cases = cases.max(1);
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be an integer, got `{raw}`"),
    }
}

/// Panic payload of [`prop_assume!`]: the case is discarded, not failed.
pub struct Discard;

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn run_one<V>(test: &impl Fn(V), value: V) -> Outcome {
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => Outcome::Pass,
        Err(payload) if payload.is::<Discard>() => Outcome::Discard,
        Err(payload) => Outcome::Fail(panic_message(payload)),
    }
}

/// Runs `test` against `cfg.cases` generated values, shrinking and
/// reporting the first failure. This is what [`props!`] expands to; call it
/// directly for programmatic properties.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) if any case fails after
/// shrinking, with a deterministic reproduction recipe.
pub fn run<G: Gen>(name: &str, cfg: &Config, gen: G, test: impl Fn(G::Value)) {
    install_quiet_hook();
    let mut executed = 0u32;
    let mut discarded = 0u32;
    let mut attempt = 0u64;
    while executed < cfg.cases {
        let case_seed = if attempt == 0 {
            cfg.seed
        } else {
            let mut st = cfg.seed.wrapping_add(attempt);
            splitmix64(&mut st)
        };
        attempt += 1;
        let mut src = Source::recording(case_seed);
        let value = gen.generate(&mut src);
        match run_one(&test, value) {
            Outcome::Pass => executed += 1,
            Outcome::Discard => {
                discarded += 1;
                assert!(
                    discarded < cfg.cases.saturating_mul(20).max(1_000),
                    "property `{name}`: too many prop_assume! discards \
                     ({discarded}); loosen the generator"
                );
            }
            Outcome::Fail(msg) => {
                let choices = src.into_choices();
                let (min_choices, min_msg) = shrink(&gen, &test, choices, case_seed, cfg);
                let mut redo = Source::replaying(min_choices, case_seed);
                let min_value = gen.generate(&mut redo);
                panic!(
                    "property `{name}` failed at case {executed} \
                     (seed {case_seed:#x})\n\
                     minimal counterexample: {min_value:?}\n\
                     failure: {min_msg}\n\
                     reproduce: MBR_TEST_SEED={case_seed:#x} MBR_TEST_CASES=1 \
                     cargo test {name}\n\
                     (original failure before shrinking: {msg})"
                );
            }
        }
    }
}

/// Shrinks a failing choice stream by zeroing chunks (truncation) and
/// halving individual choices, keeping any mutation that still fails.
fn shrink<G: Gen>(
    gen: &G,
    test: &impl Fn(G::Value),
    mut current: Vec<u64>,
    seed: u64,
    cfg: &Config,
) -> (Vec<u64>, String) {
    let mut message = String::new();
    let mut budget = cfg.shrink_budget;

    let try_candidate = |candidate: Vec<u64>, budget: &mut u32| -> Option<(Vec<u64>, String)> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let mut src = Source::replaying(candidate, seed);
        let value = gen.generate(&mut src);
        match run_one(test, value) {
            // Canonicalize to the choices actually consumed, so later
            // passes work on the shrunk structure.
            Outcome::Fail(msg) => Some((src.into_choices(), msg)),
            _ => None,
        }
    };

    let mut improved = true;
    while improved && budget > 0 {
        improved = false;

        // Truncation: zero progressively smaller suffixes and chunks.
        let n = current.len();
        let mut chunk = n / 2;
        while chunk >= 1 && budget > 0 {
            let mut start = 0;
            while start < n && budget > 0 {
                let end = (start + chunk).min(n);
                if current[start..end].iter().any(|&c| c != 0) {
                    let mut cand = current.clone();
                    for c in &mut cand[start..end] {
                        *c = 0;
                    }
                    if let Some((next, msg)) = try_candidate(cand, &mut budget) {
                        current = next;
                        message = msg;
                        improved = true;
                    }
                }
                start += chunk;
            }
            chunk /= 2;
        }

        // Per-position descent: binary-search each choice down to the
        // smallest value that still fails (halving first, then homing in
        // on the pass/fail boundary).
        for i in 0..current.len() {
            if i >= current.len() {
                break;
            }
            if current[i] == 0 || budget == 0 {
                continue;
            }
            let mut cand = current.clone();
            cand[i] = 0;
            if let Some((next, msg)) = try_candidate(cand, &mut budget) {
                current = next;
                message = msg;
                improved = true;
                continue;
            }
            let (mut lo, mut hi) = (0u64, current[i]);
            let mut best: Option<(Vec<u64>, String)> = None;
            while lo + 1 < hi && budget > 0 {
                let mid = lo + (hi - lo) / 2;
                let mut cand = current.clone();
                cand[i] = mid;
                match try_candidate(cand, &mut budget) {
                    Some(ok) => {
                        hi = mid;
                        best = Some(ok);
                    }
                    None => lo = mid,
                }
            }
            if let Some((next, msg)) = best {
                current = next;
                message = msg;
                improved = true;
            }
        }
    }

    if message.is_empty() {
        // Nothing shrank; re-derive the message from the original stream.
        let mut src = Source::replaying(current.clone(), seed);
        let value = gen.generate(&mut src);
        if let Outcome::Fail(msg) = run_one(test, value) {
            message = msg;
        }
    }
    (current, message)
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests, proptest-style:
///
/// ```
/// mbr_test::props! {
///     cases = 32;  // optional per-block default; MBR_TEST_CASES overrides
///
///     /// Addition commutes.
///     fn add_commutes(a in 0i64..1000, b in 0i64..1000) {
///         mbr_test::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {}
/// ```
///
/// Each `fn` becomes a `#[test]` that runs the body against generated
/// bindings; patterns are allowed on the left of `in`.
#[macro_export]
macro_rules! props {
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::__props_internal! { ($crate::check::Config::from_env_with_cases($cases)) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_internal! { ($crate::check::Config::from_env()) $($rest)* }
    };
}

/// Implementation detail of [`props!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __props_internal {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $gen:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::check::run(
                stringify!($name),
                &$cfg,
                ($($gen,)+),
                |($($pat,)+)| $body,
            );
        }
        $crate::__props_internal! { ($cfg) $($rest)* }
    };
}

/// `assert!` inside a property (kept for proptest-migration familiarity).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case (does not count toward the case budget) when
/// the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            ::std::panic::panic_any($crate::check::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = vec_of(0i64..1000, 0usize..20);
        let mut a = Source::recording(99);
        let mut b = Source::recording(99);
        assert_eq!(gen.generate(&mut a), gen.generate(&mut b));
    }

    #[test]
    fn replay_reproduces_recorded_value() {
        let gen = (0i64..500, vec_of(0u32..9, 1usize..8));
        let mut rec = Source::recording(5);
        let original = gen.generate(&mut rec);
        let mut rep = Source::replaying(rec.into_choices(), 5);
        assert_eq!(gen.generate(&mut rep), original);
    }

    #[test]
    fn zero_choices_hit_range_lower_bounds() {
        let gen = (10i64..90, 5usize..=7, vec_of(3u32..40, 2usize..9));
        let mut src = Source::replaying(Vec::new(), 0);
        let (a, b, v) = gen.generate(&mut src);
        assert_eq!(a, 10);
        assert_eq!(b, 5);
        assert_eq!(v, vec![3, 3]);
    }

    #[test]
    fn shrinking_minimizes_a_threshold_failure() {
        // Property "v < 600" fails for v in 600..1000; the minimal stream
        // should land near the smallest failing value.
        let gen = 0i64..1000;
        let cfg = Config {
            cases: 200,
            seed: DEFAULT_SEED,
            shrink_budget: 512,
        };
        install_quiet_hook();
        QUIET.with(|q| q.set(true));
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run("threshold", &cfg, gen, |v| assert!(v < 600));
        }));
        QUIET.with(|q| q.set(false));
        let msg = panic_message(result.expect_err("must fail"));
        assert!(
            msg.contains("minimal counterexample: 600"),
            "shrink should reach exactly 600: {msg}"
        );
        assert!(msg.contains("MBR_TEST_SEED="), "repro recipe: {msg}");
    }

    #[test]
    fn shrinking_truncates_collections() {
        let gen = vec_of(0i64..100, 0usize..40);
        let cfg = Config {
            cases: 50,
            seed: DEFAULT_SEED,
            shrink_budget: 1024,
        };
        install_quiet_hook();
        QUIET.with(|q| q.set(true));
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            run("truncate", &cfg, gen, |v: Vec<i64>| assert!(v.len() < 10));
        }));
        QUIET.with(|q| q.set(false));
        let msg = panic_message(result.expect_err("must fail"));
        // Minimal failing vec has exactly 10 elements, all shrunk to 0.
        assert!(
            msg.contains("minimal counterexample: [0, 0, 0, 0, 0, 0, 0, 0, 0, 0]"),
            "got: {msg}"
        );
    }

    #[test]
    fn discards_do_not_consume_cases() {
        let counted = std::cell::Cell::new(0u32);
        let cfg = Config {
            cases: 10,
            seed: 1,
            shrink_budget: 16,
        };
        run("discarding", &cfg, 0u32..100, |v| {
            crate::prop_assume!(v % 2 == 0);
            counted.set(counted.get() + 1);
        });
        assert_eq!(counted.get(), 10, "10 non-discarded cases must run");
    }

    #[test]
    fn flat_map_and_btree_set_generate_consistent_shapes() {
        let gen = (2usize..7).prop_flat_map(|n| {
            (
                just(n),
                vec_of(btree_set_of(0usize..7, 1usize..=4), 1usize..10),
            )
        });
        let mut src = Source::recording(123);
        for _ in 0..50 {
            let (n, sets) = gen.generate(&mut src);
            assert!((2..7).contains(&n));
            assert!((1..10).contains(&sets.len()));
            for s in &sets {
                assert!((1..=4).contains(&s.len()));
            }
        }
    }

    #[test]
    fn string_any_respects_length() {
        let gen = string_any(0usize..50);
        let mut src = Source::recording(7);
        for _ in 0..100 {
            let s = gen.generate(&mut src);
            assert!(s.chars().count() < 50);
        }
    }
}
