#![warn(missing_docs)]
//! Hermetic test and bench substrate for the MBR workspace.
//!
//! The build environment is offline, so this crate replaces the three
//! external dev-dependencies the workspace used to pull from crates.io:
//!
//! * [`rng`] — a seeded xoshiro256**/SplitMix64 deterministic PRNG with the
//!   small API surface the workspace actually uses (`u64`, `f64`,
//!   `gen_range`, `shuffle`), replacing `rand`,
//! * [`check`] — a minimal property-testing harness (the [`props!`] runner
//!   macro, generator combinators, choice-stream shrinking by halving and
//!   truncation, `MBR_TEST_CASES`/`MBR_TEST_SEED` environment control,
//!   deterministic seed reporting on failure), replacing `proptest`,
//! * [`bench`] — a micro-bench harness (warmup, timed iterations,
//!   median/min/mean reporting, machine-readable `BENCH_<suite>.json`
//!   output), replacing `criterion`.
//!
//! Everything is deterministic: a property failure prints the per-case seed
//! and the shrunken counterexample, and rerunning with
//! `MBR_TEST_SEED=<seed> MBR_TEST_CASES=1` reproduces it exactly.
//!
//! # Examples
//!
//! ```
//! use mbr_test::props;
//!
//! mbr_test::props! {
//!     /// Reversing twice is the identity.
//!     fn double_reverse_is_identity(xs in mbr_test::check::vec_of(0i64..100, 0usize..16)) {
//!         let mut ys = xs.clone();
//!         ys.reverse();
//!         ys.reverse();
//!         mbr_test::prop_assert_eq!(xs, ys);
//!     }
//! }
//! # fn main() {}
//! ```

pub mod bench;
pub mod check;
pub mod rng;

pub use rng::Rng;
