//! A micro-bench harness: warmup, timed iterations, median/min/mean
//! reporting, machine-readable JSON output.
//!
//! Each bench target builds a [`Suite`], registers closures with
//! [`Suite::bench`], and calls [`Suite::finish`], which prints a summary
//! table and writes `BENCH_<suite>.json` (an object with a `results` array;
//! all times in nanoseconds).
//!
//! Environment controls:
//!
//! * `MBR_BENCH_ITERS` — fixed sample count per benchmark (default: as many
//!   as fit the time budget, between 5 and 200),
//! * `MBR_BENCH_WARMUP_MS` / `MBR_BENCH_MEASURE_MS` — time budgets
//!   (defaults 300 / 1500),
//! * `MBR_BENCH_QUICK` — set to run one warmup and three samples, for CI
//!   smoke runs,
//! * `MBR_BENCH_OUT` — directory for the JSON files (default: current
//!   directory).

use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mbr_obs::{with_sink, CounterTotals};

/// Re-export of [`std::hint::black_box`] so benches have an optimization
/// barrier without naming `std::hint` everywhere.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark's aggregate timings, all in nanoseconds.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Minimum sample.
    pub min_ns: u128,
    /// Maximum sample.
    pub max_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
    /// Median (the headline number: robust to scheduler noise).
    pub median_ns: u128,
    /// Counter totals from one extra *observed* pass of the closure under a
    /// counting sink (the timed samples run uninstrumented). Empty when the
    /// code under test emits no counters. Sorted by counter name.
    pub counters: Vec<(String, u64)>,
}

/// A named collection of benchmarks that reports together.
pub struct Suite {
    name: String,
    results: Vec<Measurement>,
    warmup: Duration,
    measure: Duration,
    fixed_samples: Option<u64>,
    out_dir: PathBuf,
}

impl Suite {
    /// Creates a suite named `name` (controls the JSON file name).
    pub fn new(name: &str) -> Suite {
        let quick = std::env::var("MBR_BENCH_QUICK").is_ok_and(|v| v != "0");
        let env_ms = |key: &str, default: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Suite {
            name: name.to_string(),
            results: Vec::new(),
            warmup: Duration::from_millis(if quick {
                0
            } else {
                env_ms("MBR_BENCH_WARMUP_MS", 300)
            }),
            measure: Duration::from_millis(env_ms("MBR_BENCH_MEASURE_MS", 1_500)),
            fixed_samples: if quick {
                Some(3)
            } else {
                std::env::var("MBR_BENCH_ITERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            },
            out_dir: std::env::var_os("MBR_BENCH_OUT")
                .map_or_else(|| PathBuf::from("."), PathBuf::from),
        }
    }

    /// Times `f`, recording one sample per call. The closure's return value
    /// passes through [`black_box`] so the computation is not optimized
    /// away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        // Warmup: at least one call, then until the budget elapses.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        let mut warm_total = Duration::ZERO;
        loop {
            let t = Instant::now();
            black_box(f());
            warm_total += t.elapsed();
            warm_calls += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_call = warm_total / warm_calls.max(1) as u32;

        let samples = self.fixed_samples.unwrap_or_else(|| {
            if per_call.is_zero() {
                200
            } else {
                (self.measure.as_nanos() / per_call.as_nanos().max(1)).clamp(5, 200) as u64
            }
        });

        let mut times: Vec<u128> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed().as_nanos());
        }
        times.sort_unstable();
        let min_ns = *times.first().expect("at least one sample");
        let max_ns = *times.last().expect("at least one sample");
        let mean_ns = times.iter().sum::<u128>() / times.len() as u128;
        let median_ns = if times.len() % 2 == 1 {
            times[times.len() / 2]
        } else {
            (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2
        };
        // One extra observed pass: totals of every counter the closure's
        // code emits, attached to the measurement (and the JSON output) so
        // a timing regression can be traced to an algorithmic-work change.
        let totals = Arc::new(CounterTotals::default());
        with_sink(totals.clone(), || {
            black_box(f());
        });
        let counters: Vec<(String, u64)> = totals.totals().into_iter().collect();

        let m = Measurement {
            name: name.to_string(),
            samples,
            min_ns,
            max_ns,
            mean_ns,
            median_ns,
            counters,
        };
        println!(
            "bench {:<40} median {:>12}  mean {:>12}  min {:>12}  ({} samples)",
            format!("{}/{}", self.name, m.name),
            fmt_ns(m.median_ns),
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns),
            m.samples,
        );
        self.results.push(m);
    }

    /// Prints the summary and writes `BENCH_<suite>.json`.
    ///
    /// # Panics
    ///
    /// Panics if the JSON file cannot be written — a bench run whose
    /// results vanish silently is worse than a loud failure.
    pub fn finish(self) {
        std::fs::create_dir_all(&self.out_dir).unwrap_or_else(|e| {
            panic!("creating bench output dir {}: {e}", self.out_dir.display())
        });
        let path = self.out_dir.join(format!("BENCH_{}.json", self.name));
        let json = self.to_json();
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("writing bench results to {}: {e}", path.display()));
        println!(
            "suite {}: {} benchmarks -> {}",
            self.name,
            self.results.len(),
            path.display()
        );
    }

    /// The JSON document `finish` writes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.name)));
        out.push_str("  \"unit\": \"ns\",\n");
        out.push_str("  \"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"samples\": {}, \"median_ns\": {}, \
                 \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}",
                json_string(&m.name),
                m.samples,
                m.median_ns,
                m.mean_ns,
                m.min_ns,
                m.max_ns,
            ));
            if !m.counters.is_empty() {
                out.push_str(", \"counters\": {");
                for (j, (name, value)) in m.counters.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{}: {value}", json_string(name)));
                }
                out.push('}');
            }
            out.push_str(&format!(
                "}}{}\n",
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_suite(name: &str) -> Suite {
        let mut s = Suite::new(name);
        s.warmup = Duration::ZERO;
        s.fixed_samples = Some(5);
        s
    }

    #[test]
    fn measurements_are_ordered_and_counted() {
        let mut suite = quick_suite("unit");
        suite.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let m = &suite.results[0];
        assert_eq!(m.samples, 5);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.max_ns);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
    }

    #[test]
    fn counters_from_observed_pass_reach_json() {
        use mbr_obs::{counter, Counter};
        let mut suite = quick_suite("counters");
        suite.bench("emitting", || {
            counter(Counter::SimplexPivots, 7);
            1u32
        });
        let m = &suite.results[0];
        assert_eq!(m.counters, vec![(String::from("lp.simplex.pivots"), 7)]);
        let json = suite.to_json();
        assert!(json.contains("\"counters\": {\"lp.simplex.pivots\": 7}"));
    }

    #[test]
    fn json_is_well_formed() {
        let mut suite = quick_suite("json \"quoted\"");
        suite.bench("noop", || 1u32);
        suite.bench("noop2", || 2u32);
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"json \\\"quoted\\\"\""));
        assert!(json.contains("\"median_ns\""));
        assert_eq!(json.matches("\"name\"").count(), 2);
        // Exactly one comma between the two result objects.
        assert_eq!(json.matches("},\n").count(), 1);
    }
}
