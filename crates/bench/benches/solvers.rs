//! Solver micro-bench target: set-partitioning, simplex, cliques, hulls.
//!
//! Run with `cargo bench -p mbr-bench --bench solvers`; results land in
//! `BENCH_solvers.json`.

fn main() {
    mbr_bench::suites::solvers();
}
