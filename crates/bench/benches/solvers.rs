//! Micro-benchmarks of the algorithmic substrates: the set-partitioning
//! branch-and-bound, the simplex LP, Bron–Kerbosch, and the convex hull.

use criterion::{criterion_group, criterion_main, Criterion};
use mbr_geom::{convex_hull, Point};
use mbr_graph::{BitGraph, UnGraph};
use mbr_lp::{LpProblem, Sense, SetPartition};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn bench_setpart(c: &mut Criterion) {
    // A 30-element instance shaped like a composition partition: singletons
    // plus overlapping pair/quad candidates.
    let n = 30usize;
    let mut sp = SetPartition::new(n);
    for e in 0..n {
        sp.add_candidate(&[e], 1.0);
    }
    let mut state = 0x5EED_u64;
    for _ in 0..200 {
        let a = (xorshift(&mut state) % n as u64) as usize;
        let b = (a + 1 + (xorshift(&mut state) % 4) as usize).min(n - 1);
        if a != b {
            sp.add_candidate(&[a, b], 0.5);
        }
        let q: Vec<usize> = (0..4)
            .map(|_| (xorshift(&mut state) % n as u64) as usize)
            .collect();
        sp.add_candidate(&q, 0.25);
    }
    c.bench_function("setpart_30_elements", |b| {
        b.iter(|| sp.solve_bounded(50_000).expect("feasible"))
    });
}

fn bench_simplex(c: &mut Criterion) {
    // The Section 4.2 placement LP shape: 2 position vars + 4 helpers per
    // pin over 16 pins.
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, 100_000.0, 0.0);
    let y = lp.add_var(0.0, 100_000.0, 0.0);
    let mut state = 0xF00D_u64;
    for _ in 0..16 {
        let bx = (xorshift(&mut state) % 90_000) as f64;
        let by = (xorshift(&mut state) % 90_000) as f64;
        let hx = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let lx = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.0);
        let hy = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let ly = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.0);
        lp.add_constraint(&[(hx, 1.0)], Sense::Ge, bx);
        lp.add_constraint(&[(hx, 1.0), (x, -1.0)], Sense::Ge, 0.0);
        lp.add_constraint(&[(lx, 1.0)], Sense::Le, bx);
        lp.add_constraint(&[(lx, 1.0), (x, -1.0)], Sense::Le, 0.0);
        lp.add_constraint(&[(hy, 1.0)], Sense::Ge, by);
        lp.add_constraint(&[(hy, 1.0), (y, -1.0)], Sense::Ge, 0.0);
        lp.add_constraint(&[(ly, 1.0)], Sense::Le, by);
        lp.add_constraint(&[(ly, 1.0), (y, -1.0)], Sense::Le, 0.0);
    }
    c.bench_function("simplex_placement_lp_16_pins", |b| {
        b.iter(|| lp.solve().expect("feasible"))
    });
}

fn bench_bron_kerbosch(c: &mut Criterion) {
    // A 30-node graph at ~50 % density — the partition-bound worst case.
    let n = 30;
    let mut g = UnGraph::new(n);
    let mut state = 0xBEEF_u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if xorshift(&mut state) % 100 < 50 {
                g.add_edge(i, j);
            }
        }
    }
    let nodes: Vec<usize> = (0..n).collect();
    let bg = BitGraph::from_subgraph(&g, &nodes);
    c.bench_function("bron_kerbosch_30_nodes", |b| {
        b.iter(|| bg.maximal_cliques())
    });
}

fn bench_convex_hull(c: &mut Criterion) {
    let mut state = 0xCAFE_u64;
    let pts: Vec<Point> = (0..64)
        .map(|_| {
            Point::new(
                (xorshift(&mut state) % 100_000) as i64,
                (xorshift(&mut state) % 100_000) as i64,
            )
        })
        .collect();
    c.bench_function("convex_hull_64_corners", |b| b.iter(|| convex_hull(&pts)));
}

criterion_group!(
    benches,
    bench_setpart,
    bench_simplex,
    bench_bron_kerbosch,
    bench_convex_hull
);
criterion_main!(benches);
