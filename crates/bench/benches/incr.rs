//! Incremental-session target: one ECO + recompose through a persistent
//! `CompositionSession` versus a from-scratch batch compose of the same
//! mutated design, per preset, with counter guards on the reuse.
//!
//! Run with `cargo bench -p mbr-bench --bench incr`; results land in
//! `BENCH_incr.json`.

fn main() {
    mbr_bench::suites::incr();
}
