//! Table 1 bench target: the full composition flow per design.
//!
//! Run with `cargo bench -p mbr-bench --bench table1`; results land in
//! `BENCH_table1.json`.

fn main() {
    mbr_bench::suites::table1();
}
