//! Table 1 benchmark: the full composition flow per design.
//!
//! The paper reports ~60 min CPU per design on 30–50 k-register netlists;
//! these presets are scaled ~18× down, so seconds here correspond to that
//! hour there. Run with `cargo bench -p mbr-bench --bench table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbr_bench::{generate, library, model_for};
use mbr_core::{Composer, ComposerOptions};

fn bench_compose(c: &mut Criterion) {
    let lib = library();
    let mut group = c.benchmark_group("table1_compose");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for spec in [mbr_workloads::d1(), mbr_workloads::d3()] {
        let design = generate(&spec, &lib);
        let composer = Composer::new(ComposerOptions::default(), model_for(&spec));
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &design, |b, d| {
            b.iter(|| {
                let mut work = d.clone();
                composer.compose(&mut work, &lib).expect("flow succeeds")
            });
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    use mbr_core::candidates::enumerate_candidates;
    use mbr_core::compat::CompatGraph;
    use mbr_sta::Sta;

    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();

    let mut group = c.benchmark_group("table1_stages");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("sta_full", |b| {
        b.iter(|| Sta::new(&design, &lib, model).expect("acyclic"));
    });
    let sta = Sta::new(&design, &lib, model).expect("acyclic");
    group.bench_function("compat_graph", |b| {
        b.iter(|| CompatGraph::build(&design, &lib, &sta, &options));
    });
    let compat = CompatGraph::build(&design, &lib, &sta, &options);
    group.bench_function("enumerate_candidates", |b| {
        b.iter(|| enumerate_candidates(&design, &lib, &compat, &options));
    });
    group.finish();
}

criterion_group!(benches, bench_compose, bench_stages);
criterion_main!(benches);
