//! Fig. 5 bench target: histogram and design-metrics measurement.
//!
//! Run with `cargo bench -p mbr-bench --bench fig5`; results land in
//! `BENCH_fig5.json`.

fn main() {
    mbr_bench::suites::fig5();
}
