//! Fig. 5 benchmark: measuring the bit-width histogram and the full design
//! metrics (STA + CTS + congestion + wirelength) used for every table row.

use criterion::{criterion_group, criterion_main, Criterion};
use mbr_bench::{generate, library, model_for};
use mbr_core::{BitWidthHistogram, DesignMetrics};
use mbr_cts::CtsConfig;
use mbr_place::CongestionConfig;

fn bench_metrics(c: &mut Criterion) {
    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("bitwidth_histogram", |b| {
        b.iter(|| BitWidthHistogram::measure(&design));
    });
    group.bench_function("design_metrics", |b| {
        b.iter(|| {
            DesignMetrics::measure(
                &design,
                &lib,
                model,
                &CtsConfig::default(),
                &CongestionConfig::default(),
            )
            .expect("metrics")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
