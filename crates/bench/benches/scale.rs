//! Paper-scale target: stage timings on the d6 preset (≈20 k registers),
//! plus — outside `MBR_BENCH_QUICK` — a full bounded d6 compose and d7/d8
//! netlist generation.
//!
//! Run with `cargo bench -p mbr-bench --bench scale`; results land in
//! `BENCH_scale.json`.

fn main() {
    mbr_bench::suites::scale();
}
