//! Arena/SoA thread-sweep target: full composes of the scaled presets at
//! 1/2/4/8 worker threads with per-measurement work counters, plus the
//! thread-invariance guard on the counter totals.
//!
//! Run with `cargo bench -p mbr-bench --bench soa`; results land in
//! `BENCH_soa.json`. Set `MBR_SCALE_TESTS=1` to include the d6 sweep.

fn main() {
    mbr_bench::suites::soa();
}
