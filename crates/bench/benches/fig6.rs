//! Fig. 6 benchmark: ILP selection vs the greedy heuristic on the same
//! candidate sets (the selection stage is what the figure isolates).

use criterion::{criterion_group, criterion_main, Criterion};
use mbr_bench::{generate, library, model_for};
use mbr_core::{Composer, ComposerOptions};

fn bench_selection(c: &mut Criterion) {
    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let composer = Composer::new(ComposerOptions::default(), model_for(&spec));

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("ilp_flow", |b| {
        b.iter(|| {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow")
        });
    });
    group.bench_function("heuristic_flow", |b| {
        b.iter(|| {
            let mut work = design.clone();
            composer.compose_heuristic(&mut work, &lib).expect("flow")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
