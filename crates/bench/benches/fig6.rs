//! Fig. 6 bench target: ILP vs heuristic selection.
//!
//! Run with `cargo bench -p mbr-bench --bench fig6`; results land in
//! `BENCH_fig6.json`.

fn main() {
    mbr_bench::suites::fig6();
}
