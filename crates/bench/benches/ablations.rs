//! Ablation bench target: partition bound and feature toggles.
//!
//! Run with `cargo bench -p mbr-bench --bench ablations`; results land in
//! `BENCH_ablations.json`.

fn main() {
    mbr_bench::suites::ablations();
}
