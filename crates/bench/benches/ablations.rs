//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! partition bound (runtime vs QoR), blocking weights, incomplete MBRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbr_bench::{generate, library, model_for};
use mbr_core::{Composer, ComposerOptions};
use mbr_workloads::DesignSpec;

/// A ~500-register design: large enough for the sweeps to differentiate,
/// small enough for Criterion's repeated sampling.
fn bench_spec() -> DesignSpec {
    DesignSpec {
        name: "bench_small".into(),
        seed: 0xBE7C,
        cluster_grid: 3,
        groups_per_cluster: 10,
        regs_per_group: 3..=6,
        width_mix: [0.45, 0.25, 0.18, 0.12],
        fixed_fraction: 0.12,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.2,
        extra_buffer_depth: 3,
        utilization: 0.4,
        clock_period: 500.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

fn bench_partition_bound(c: &mut Criterion) {
    let lib = library();
    let spec = bench_spec();
    let design = generate(&spec, &lib);
    let mut group = c.benchmark_group("ablation_partition_bound");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for bound in [10usize, 20, 30, 40] {
        let composer = Composer::new(
            ComposerOptions {
                partition_max_nodes: bound,
                ..ComposerOptions::default()
            },
            model_for(&spec),
        );
        group.bench_with_input(BenchmarkId::from_parameter(bound), &design, |b, d| {
            b.iter(|| {
                let mut work = d.clone();
                composer.compose(&mut work, &lib).expect("flow")
            });
        });
    }
    group.finish();
}

fn bench_feature_toggles(c: &mut Criterion) {
    let lib = library();
    let spec = bench_spec();
    let design = generate(&spec, &lib);
    let mut group = c.benchmark_group("ablation_features");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let cases = [
        ("default", ComposerOptions::default()),
        (
            "no_weights",
            ComposerOptions {
                use_blocking_weights: false,
                ..ComposerOptions::default()
            },
        ),
        (
            "no_incomplete",
            ComposerOptions {
                allow_incomplete: false,
                ..ComposerOptions::default()
            },
        ),
        (
            "no_skew_no_sizing",
            ComposerOptions {
                apply_useful_skew: false,
                apply_sizing: false,
                ..ComposerOptions::default()
            },
        ),
    ];
    for (name, options) in cases {
        let composer = Composer::new(options, model_for(&spec));
        group.bench_with_input(BenchmarkId::from_parameter(name), &design, |b, d| {
            b.iter(|| {
                let mut work = d.clone();
                composer.compose(&mut work, &lib).expect("flow")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition_bound, bench_feature_toggles);
criterion_main!(benches);
