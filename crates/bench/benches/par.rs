//! Parallel-scaling target: the d1 flow at 1/2/4/8 worker threads plus the
//! raw `par_map` dispatch overhead.
//!
//! Run with `cargo bench -p mbr-bench --bench par`; results land in
//! `BENCH_par.json`.

fn main() {
    mbr_bench::suites::par();
}
