//! Observability overhead target: the d1 flow with no sink vs a counting
//! sink.
//!
//! Run with `cargo bench -p mbr-bench --bench obs`; results land in
//! `BENCH_obs.json`.

fn main() {
    mbr_bench::suites::obs();
}
