//! Shared harness for regenerating the paper's tables and figures.
//!
//! The `repro` binary (`cargo run -p mbr-bench --bin repro -- <experiment>`)
//! prints each table/figure; the [`suites`] benchmarks (reachable both via
//! `cargo bench -p mbr-bench` and `cargo run -p mbr-bench --bin bench`)
//! measure the same flows on the in-workspace `mbr_test::bench` harness.
//! Both build on the helpers here so every experiment runs the exact same
//! configuration.

pub mod suites;

use mbr_core::{ComposeOutcome, Composer, ComposerOptions, DesignMetrics};
use mbr_cts::CtsConfig;
use mbr_liberty::{standard_library, Library};
use mbr_netlist::Design;
use mbr_place::CongestionConfig;
use mbr_sta::DelayModel;
use mbr_workloads::DesignSpec;

/// Which selection strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's placement-aware ILP.
    Ilp,
    /// The Fig. 6 greedy maximal-clique heuristic.
    Heuristic,
    /// The future-work extension: decompose max-width MBRs, then ILP.
    DecomposeThenIlp,
}

/// Everything one experiment run produces.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Metrics of the incoming ("Base") design.
    pub base: DesignMetrics,
    /// Metrics after composition ("Ours").
    pub ours: DesignMetrics,
    /// Flow statistics.
    pub outcome: ComposeOutcome,
}

/// The standard library shared by every experiment.
pub fn library() -> Library {
    standard_library()
}

/// The delay model a spec asks for.
pub fn model_for(spec: &DesignSpec) -> DelayModel {
    let base = DelayModel::default();
    DelayModel {
        clock_period: spec.clock_period,
        wire_res_per_dbu: base.wire_res_per_dbu * spec.wire_scale,
        wire_cap_per_dbu: base.wire_cap_per_dbu * spec.wire_scale,
        ..base
    }
}

/// Generates a spec's design (convenience).
pub fn generate(spec: &DesignSpec, lib: &Library) -> Design {
    spec.generate(lib)
}

/// Runs one full experiment: generate, measure Base, compose with the given
/// strategy/options, measure Ours.
///
/// # Panics
///
/// Panics if the flow fails — experiments are expected to succeed, and a
/// failure should abort the harness loudly.
pub fn run(
    spec: &DesignSpec,
    lib: &Library,
    options: ComposerOptions,
    strategy: Strategy,
) -> RunResult {
    let mut design = generate(spec, lib);
    let model = model_for(spec);
    let cts = CtsConfig::default();
    let cong = CongestionConfig::default();
    let base =
        DesignMetrics::measure(&design, lib, model, &cts, &cong).expect("base design analyzes");
    let composer = Composer::new(options, model);
    let outcome = match strategy {
        Strategy::Ilp => composer.compose(&mut design, lib),
        Strategy::Heuristic => composer.compose_heuristic(&mut design, lib),
        Strategy::DecomposeThenIlp => composer.compose_with_decomposition(&mut design, lib),
    }
    .expect("composition succeeds");
    let ours =
        DesignMetrics::measure(&design, lib, model, &cts, &cong).expect("composed design analyzes");
    RunResult {
        base,
        ours,
        outcome,
    }
}

/// Percentage saving helper, `+` = reduced.
pub fn save_pct(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (base - ours) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbr_workloads::d1;

    #[test]
    fn run_produces_consistent_results() {
        let lib = library();
        let result = run(&d1(), &lib, ComposerOptions::default(), Strategy::Ilp);
        assert_eq!(result.base.total_regs, result.outcome.registers_before);
        assert_eq!(result.ours.total_regs, result.outcome.registers_after);
        assert!(result.ours.total_regs < result.base.total_regs);
    }

    #[test]
    fn save_pct_signs() {
        assert_eq!(save_pct(100.0, 80.0), 20.0);
        assert_eq!(save_pct(100.0, 120.0), -20.0);
        assert_eq!(save_pct(0.0, 5.0), 0.0);
    }
}
