//! Clock-period calibration helper: failing-endpoint ratio per period.
use mbr_liberty::standard_library;
use mbr_sta::{DelayModel, Sta};

fn main() {
    let lib = standard_library();
    for spec in mbr_workloads::all_presets() {
        let design = spec.generate(&lib);
        print!("{}: ", spec.name);
        for period in [520.0, 560.0, 600.0, 650.0, 700.0, 760.0, 820.0] {
            let base = DelayModel::default();
            let model = DelayModel {
                clock_period: period,
                wire_res_per_dbu: base.wire_res_per_dbu * spec.wire_scale,
                wire_cap_per_dbu: base.wire_cap_per_dbu * spec.wire_scale,
                ..base
            };
            let sta = Sta::new(&design, &lib, model).unwrap();
            let r = sta.report();
            print!(
                "{period}:{:.0}% ",
                100.0 * r.failing_endpoints as f64 / r.endpoints().len() as f64
            );
        }
        println!();
    }
}
