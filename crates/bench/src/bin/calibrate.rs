//! Clock-period calibration helper: failing-endpoint ratio per period,
//! rendered on the shared [`mbr_obs::table`] path.
use mbr_liberty::standard_library;
use mbr_obs::table::Table;
use mbr_sta::{DelayModel, Sta};

const PERIODS: [f64; 7] = [520.0, 560.0, 600.0, 650.0, 700.0, 760.0, 820.0];

fn main() {
    let lib = standard_library();
    let mut headers = vec![String::from("design")];
    headers.extend(PERIODS.iter().map(|p| format!("{p} ps")));
    let ncols = headers.len();
    let mut table = Table::new(headers).right_align(1..ncols);
    for spec in mbr_workloads::all_presets() {
        let design = spec.generate(&lib);
        let mut row = vec![spec.name.clone()];
        for period in PERIODS {
            let base = DelayModel::default();
            let model = DelayModel {
                clock_period: period,
                wire_res_per_dbu: base.wire_res_per_dbu * spec.wire_scale,
                wire_cap_per_dbu: base.wire_cap_per_dbu * spec.wire_scale,
                ..base
            };
            let sta = Sta::new(&design, &lib, model).unwrap();
            let r = sta.report();
            row.push(format!(
                "{:.0}%",
                100.0 * r.failing_endpoints as f64 / r.endpoints().len() as f64
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
