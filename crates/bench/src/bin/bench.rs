//! Runs the benchmark suites and writes `BENCH_<suite>.json` files.
//!
//! Usage: `cargo run --release -p mbr-bench --bin bench -- [suite ...]`
//! where each suite is one of `table1`, `fig5`, `fig6`, `ablations`,
//! `solvers`, `obs`, `par`, `incr`, `scale`, `soa`; with no arguments
//! every suite runs.
//! Set `MBR_BENCH_QUICK=1` for a three-sample smoke run.

use mbr_bench::suites;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        suites::run_all();
        return;
    }
    for name in &args {
        match name.as_str() {
            "table1" => suites::table1(),
            "fig5" => suites::fig5(),
            "fig6" => suites::fig6(),
            "ablations" => suites::ablations(),
            "solvers" => suites::solvers(),
            "obs" => suites::obs(),
            "par" => suites::par(),
            "incr" => suites::incr(),
            "scale" => suites::scale(),
            "soa" => suites::soa(),
            other => {
                eprintln!(
                    "unknown suite `{other}` (expected table1|fig5|fig6|ablations|solvers|obs|par|incr|scale|soa)"
                );
                std::process::exit(2);
            }
        }
    }
}
