//! Stage-by-stage timing of the composition flow on d1.
use mbr_bench::{generate, library, model_for};
use mbr_core::candidates::enumerate_candidates;
use mbr_core::compat::CompatGraph;
use mbr_core::{Composer, ComposerOptions};
use mbr_sta::Sta;
use std::time::Instant;

fn main() {
    let lib = library();
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg == "decompose" {
        profile_decompose(&lib);
        return;
    }
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();

    let t = Instant::now();
    let sta = Sta::new(&design, &lib, model).unwrap();
    println!("sta: {:?}", t.elapsed());
    let t = Instant::now();
    let compat = CompatGraph::build(&design, &lib, &sta, &options);
    println!(
        "compat: {:?} ({} regs, {} edges)",
        t.elapsed(),
        compat.regs.len(),
        compat.graph.edge_count()
    );
    let t = Instant::now();
    let sets = enumerate_candidates(&design, &lib, &compat, &options);
    let n: usize = sets.iter().map(|s| s.candidates.len()).sum();
    println!("enumerate: {:?} ({} candidates)", t.elapsed(), n);
    let t = Instant::now();
    let mut solve_nodes = 0u64;
    for set in &sets {
        let mut sp = mbr_lp::SetPartition::new(set.elements.len());
        for (i, idx) in set.member_idx.iter().enumerate() {
            sp.add_candidate(idx, set.candidates[i].weight);
        }
        solve_nodes += sp.solve_bounded(50_000).unwrap().nodes_explored;
    }
    println!("ilp: {:?} ({} nodes)", t.elapsed(), solve_nodes);

    // Full flow with and without skew/sizing.
    let t = Instant::now();
    let mut work = design.clone();
    let composer = Composer::new(
        ComposerOptions {
            apply_useful_skew: false,
            apply_sizing: false,
            ..options.clone()
        },
        model,
    );
    composer.compose(&mut work, &lib).unwrap();
    println!("full flow (no skew/sizing): {:?}", t.elapsed());
    let t = Instant::now();
    let mut work = design.clone();
    let composer = Composer::new(options, model);
    composer.compose(&mut work, &lib).unwrap();
    println!("full flow (default): {:?}", t.elapsed());
}

/// Stage timing of the speculative decomposition path on d4.
fn profile_decompose(lib: &mbr_liberty::Library) {
    let spec = mbr_workloads::d4();
    let mut design = generate(&spec, lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();

    // Split all max-width MBRs manually to time the recomposition stages.
    let t = Instant::now();
    let targets: Vec<_> = design
        .registers()
        .filter(|(id, inst)| {
            let cell = inst.register_cell().expect("register");
            design.register_width(*id) >= lib.max_width(lib.cell(cell).class)
                && design.register_width(*id) > 1
        })
        .map(|(id, _)| id)
        .collect();
    println!("targets: {} ({:?})", targets.len(), t.elapsed());
    let t = Instant::now();
    let mut bits = Vec::new();
    for id in targets {
        let class = lib.cell(design.inst(id).register_cell().unwrap()).class;
        if let Some(cell) = lib.select_cell(class, 1, None, false) {
            if let Ok(b) = design.split_register(id, lib, cell) {
                bits.extend(b);
            }
        }
    }
    println!("split {} bits: {:?}", bits.len(), t.elapsed());
    let t = Instant::now();
    let grid = mbr_place::PlacementGrid::new(design.die(), 600, 100);
    mbr_place::legalize(&mut design, &grid, &bits).expect("room");
    println!("legalize: {:?}", t.elapsed());
    let t = Instant::now();
    let sta = Sta::new(&design, lib, model).unwrap();
    println!("sta: {:?}", t.elapsed());
    let t = Instant::now();
    let compat = CompatGraph::build(&design, lib, &sta, &options);
    println!(
        "compat: {:?} ({} regs, {} edges)",
        t.elapsed(),
        compat.regs.len(),
        compat.graph.edge_count()
    );
    let t = Instant::now();
    let sets = enumerate_candidates(&design, lib, &compat, &options);
    let n: usize = sets.iter().map(|s| s.candidates.len()).sum();
    println!(
        "enumerate: {:?} ({} candidates, {} partitions)",
        t.elapsed(),
        n,
        sets.len()
    );
    let t = Instant::now();
    let mut nodes = 0u64;
    for set in &sets {
        let mut sp = mbr_lp::SetPartition::new(set.elements.len());
        for (i, idx) in set.member_idx.iter().enumerate() {
            sp.add_candidate(idx, set.candidates[i].weight);
        }
        nodes += sp
            .solve_bounded(options.ilp_node_limit)
            .unwrap()
            .nodes_explored;
    }
    println!("ilp: {:?} ({nodes} nodes)", t.elapsed());
    let t = Instant::now();
    let composer = Composer::new(options, model);
    let out = composer.compose(&mut design, lib).unwrap();
    println!("rest of flow: {:?} (merges {})", t.elapsed(), out.merges);
}
