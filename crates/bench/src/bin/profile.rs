//! Stage-by-stage timing of the composition flow on d1, rendered on the
//! shared [`mbr_obs::table`] path the other flow binaries use.
use mbr_bench::{generate, library, model_for};
use mbr_core::candidates::enumerate_candidates;
use mbr_core::compat::CompatGraph;
use mbr_core::{Composer, ComposerOptions};
use mbr_obs::table::{fmt_ns, Table};
use mbr_sta::Sta;

/// Collects `(stage, elapsed, note)` rows and renders them as one table.
struct Profile {
    table: Table,
}

impl Profile {
    fn new() -> Profile {
        Profile {
            table: Table::new(["stage", "time", "notes"]).right_align([1]),
        }
    }

    fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> (T, String)) -> T {
        // Reads time through the injectable mbr-obs clock, so a MockClock
        // test can drive this path deterministically.
        let t0 = mbr_obs::now_ns();
        let (value, note) = f();
        let ns = mbr_obs::now_ns().saturating_sub(t0);
        self.table.row([stage.to_string(), fmt_ns(ns), note]);
        value
    }

    fn render(&self) {
        print!("{}", self.table.render());
    }
}

fn main() {
    let lib = library();
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg == "decompose" {
        profile_decompose(&lib);
        return;
    }
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();
    let mut p = Profile::new();

    let sta = p.time("sta", || {
        (Sta::new(&design, &lib, model).unwrap(), String::new())
    });
    let compat = p.time("compat", || {
        let compat = CompatGraph::build(&design, &lib, &sta, &options);
        let note = format!(
            "{} regs, {} edges",
            compat.regs.len(),
            compat.graph.edge_count()
        );
        (compat, note)
    });
    let sets = p.time("enumerate", || {
        let sets = enumerate_candidates(&design, &lib, &compat, &options);
        let n: usize = sets.iter().map(|s| s.candidates.len()).sum();
        (sets, format!("{n} candidates"))
    });
    p.time("ilp", || {
        let mut solve_nodes = 0u64;
        for set in &sets {
            let mut sp = mbr_lp::SetPartition::new(set.elements.len());
            for (i, idx) in set.member_idx.iter().enumerate() {
                sp.add_candidate(idx, set.candidates[i].weight);
            }
            solve_nodes += sp.solve_bounded(50_000).unwrap().nodes_explored;
        }
        ((), format!("{solve_nodes} nodes"))
    });

    // Full flow with and without skew/sizing.
    p.time("full flow (no skew/sizing)", || {
        let mut work = design.clone();
        let composer = Composer::new(
            ComposerOptions {
                apply_useful_skew: false,
                apply_sizing: false,
                ..options.clone()
            },
            model,
        );
        composer.compose(&mut work, &lib).unwrap();
        ((), String::new())
    });
    p.time("full flow (default)", || {
        let mut work = design.clone();
        let composer = Composer::new(options, model);
        composer.compose(&mut work, &lib).unwrap();
        ((), String::new())
    });
    p.render();
}

/// Stage timing of the speculative decomposition path on d4.
fn profile_decompose(lib: &mbr_liberty::Library) {
    let spec = mbr_workloads::d4();
    let mut design = generate(&spec, lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();
    let mut p = Profile::new();

    // Split all max-width MBRs manually to time the recomposition stages.
    let targets = p.time("targets", || {
        let targets: Vec<_> = design
            .registers()
            .filter(|(id, inst)| {
                let cell = inst.register_cell().expect("register");
                design.register_width(*id) >= lib.max_width(lib.cell(cell).class)
                    && design.register_width(*id) > 1
            })
            .map(|(id, _)| id)
            .collect();
        let note = format!("{} registers", targets.len());
        (targets, note)
    });
    let bits = p.time("split", || {
        let mut bits = Vec::new();
        for id in targets {
            let class = lib.cell(design.inst(id).register_cell().unwrap()).class;
            if let Some(cell) = lib.select_cell(class, 1, None, false) {
                if let Ok(b) = design.split_register(id, lib, cell) {
                    bits.extend(b);
                }
            }
        }
        let note = format!("{} bits", bits.len());
        (bits, note)
    });
    p.time("legalize", || {
        let grid = mbr_place::PlacementGrid::new(design.die(), 600, 100);
        mbr_place::legalize(&mut design, &grid, &bits).expect("room");
        ((), String::new())
    });
    let sta = p.time("sta", || {
        (Sta::new(&design, lib, model).unwrap(), String::new())
    });
    let compat = p.time("compat", || {
        let compat = CompatGraph::build(&design, lib, &sta, &options);
        let note = format!(
            "{} regs, {} edges",
            compat.regs.len(),
            compat.graph.edge_count()
        );
        (compat, note)
    });
    let sets = p.time("enumerate", || {
        let sets = enumerate_candidates(&design, lib, &compat, &options);
        let n: usize = sets.iter().map(|s| s.candidates.len()).sum();
        let note = format!("{n} candidates, {} partitions", sets.len());
        (sets, note)
    });
    p.time("ilp", || {
        let mut nodes = 0u64;
        for set in &sets {
            let mut sp = mbr_lp::SetPartition::new(set.elements.len());
            sp.set_lp_bound(options.lp_bound)
                .set_dual_order(options.dual_ordering);
            for (i, idx) in set.member_idx.iter().enumerate() {
                sp.add_candidate(idx, set.candidates[i].weight);
            }
            nodes += sp
                .solve_bounded(options.node_budget)
                .unwrap()
                .nodes_explored;
        }
        ((), format!("{nodes} nodes"))
    });
    p.time("rest of flow", || {
        let composer = Composer::new(options.clone(), model);
        let out = composer.compose(&mut design, lib).unwrap();
        ((), format!("{} merges", out.merges))
    });
    p.render();
}
