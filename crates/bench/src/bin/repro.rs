//! Regenerates every table and figure of the DAC'17 paper.
//!
//! ```text
//! cargo run --release -p mbr-bench --bin repro -- all
//! cargo run --release -p mbr-bench --bin repro -- table1
//! cargo run --release -p mbr-bench --bin repro -- fig3
//! cargo run --release -p mbr-bench --bin repro -- fig5
//! cargo run --release -p mbr-bench --bin repro -- fig6
//! cargo run --release -p mbr-bench --bin repro -- ablations
//! cargo run --release -p mbr-bench --bin repro -- decompose
//! cargo run --release -p mbr-bench --bin repro -- stats
//! cargo run --release -p mbr-bench --bin repro -- d1
//! ```
//!
//! A preset name (`d1`..`d5`) runs the flow on that design alone and prints
//! its per-stage wall-clock breakdown. Set `MBR_TRACE=<path>` to capture a
//! JSONL trace; pass `--report` for a span/counter summary of the run.

use mbr_bench::{library, run, save_pct, RunResult, Strategy};
use mbr_core::{ComposerOptions, DesignMetrics};
use mbr_obs::summary::{stage_table, Summary};
use mbr_workloads::{all_presets, sweep_presets};

fn main() {
    let mut report = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--report" {
                report = true;
                false
            } else {
                true
            }
        })
        .collect();
    let obs = mbr_obs::init_cli(report);
    let arg = args.first().cloned().unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "table1" => table1(),
        "fig3" => fig3(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "ablations" => ablations(),
        "decompose" => decompose(),
        "stats" => stats(),
        "all" => {
            table1();
            fig3();
            fig5();
            fig6();
            ablations();
            decompose();
        }
        preset if all_presets().iter().any(|s| s.name == preset) => single(preset),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: repro [--report] [table1|fig3|fig5|fig6|ablations|decompose|stats|d1..d5|all]"
            );
            std::process::exit(2);
        }
    }
    if let Some(rec) = &obs.recorder {
        print!("{}", Summary::from_events(&rec.events()).render());
    }
    obs.finish();
}

/// One preset, end to end, with the per-stage wall-clock breakdown — the
/// quick "where does the time go" view (and the trace-producing entry point
/// CI validates).
fn single(name: &str) {
    let lib = library();
    let spec = all_presets()
        .into_iter()
        .find(|s| s.name == name)
        .expect("caller checked the preset name");
    println!("== {} ==", spec.name.to_uppercase());
    let RunResult {
        base,
        ours,
        outcome,
    } = run(&spec, &lib, ComposerOptions::default(), Strategy::Ilp);
    println!(
        "regs {} -> {} ({} merges, {} incomplete, {} resized), tns {:.2} -> {:.2} ns",
        base.total_regs,
        ours.total_regs,
        outcome.merges,
        outcome.incomplete_mbrs,
        outcome.resized,
        base.tns_ns,
        ours.tns_ns,
    );
    print!("{}", stage_table(&outcome.timings));
}

fn row(label: &str, m: &DesignMetrics, elapsed_ms: Option<u128>) {
    println!(
        "{label:>5} {:>10.0} {:>8} {:>8} {:>8} {:>8} {:>9.2} {:>9.2} {:>7} {:>7} {:>8.2} {:>8.2} {:>8}",
        m.area_um2,
        m.cells,
        m.total_regs,
        m.comp_regs,
        m.clk_bufs,
        m.clk_cap_pf,
        m.tns_ns,
        m.failing_endpoints,
        m.ovfl_edges,
        m.wl_clk_mm,
        m.wl_other_mm,
        elapsed_ms.map_or(String::from("-"), |t| format!("{t} ms")),
    );
}

fn save_row(base: &DesignMetrics, ours: &DesignMetrics) {
    println!(
        "{:>5} {:>10.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1} {:>7.1} {:>7.1} {:>8.1} {:>8.1} {:>8}",
        "Save%",
        save_pct(base.area_um2, ours.area_um2),
        save_pct(base.cells as f64, ours.cells as f64),
        save_pct(base.total_regs as f64, ours.total_regs as f64),
        save_pct(base.comp_regs as f64, ours.comp_regs as f64),
        save_pct(base.clk_bufs as f64, ours.clk_bufs as f64),
        save_pct(base.clk_cap_pf, ours.clk_cap_pf),
        save_pct(base.tns_ns.abs(), ours.tns_ns.abs()),
        save_pct(base.failing_endpoints as f64, ours.failing_endpoints as f64),
        save_pct(base.ovfl_edges as f64, ours.ovfl_edges as f64),
        save_pct(base.wl_clk_mm, ours.wl_clk_mm),
        save_pct(base.wl_other_mm, ours.wl_other_mm),
        "",
    );
}

/// Table 1: Base vs Ours on D1–D5.
fn table1() {
    println!("== Table 1: industrial design characteristics before/after MBR composition ==");
    println!(
        "{:>5} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "",
        "Area um2",
        "Cells",
        "Regs",
        "CompR",
        "ClkBuf",
        "ClkCap pF",
        "TNS ns",
        "FailEP",
        "Ovfl",
        "WLclk",
        "WLoth",
        "Time"
    );
    let lib = library();
    let mut reg_saves = Vec::new();
    let mut comp_merged = Vec::new();
    let presets = all_presets();
    let runs = sweep_presets(&presets, |spec| {
        run(spec, &lib, ComposerOptions::default(), Strategy::Ilp)
    });
    for (spec, result) in presets.iter().zip(runs) {
        let RunResult {
            base,
            ours,
            outcome,
        } = result;
        println!("-- {} --", spec.name.to_uppercase());
        row("Base", &base, None);
        row("Ours", &ours, Some(outcome.elapsed().as_millis()));
        save_row(&base, &ours);
        println!(
            "      clock power {:.1} -> {:.1} uW ({:.1} % saved)",
            base.clk_power_uw,
            ours.clk_power_uw,
            save_pct(base.clk_power_uw, ours.clk_power_uw),
        );
        reg_saves.push(save_pct(base.total_regs as f64, ours.total_regs as f64));
        comp_merged.push(100.0 * outcome.merged_registers as f64 / base.comp_regs.max(1) as f64);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average total-register saving: {:.1} % (paper: 29 %); composable registers consumed by merges: {:.1} % (paper reduction on composable: 48 %)",
        avg(&reg_saves),
        avg(&comp_merged),
    );
    println!();
}

/// Fig. 3: candidate weights of the worked example (the full assertion suite
/// lives in `crates/core/tests/fig3_example.rs`; here we print the table).
fn fig3() {
    println!("== Fig. 3: candidate MBR weights of the Fig. 1/2 example ==");
    println!("(see crates/core/tests/fig3_example.rs for the asserted reproduction)");
    println!("original registers:        A B C D E F at w = 1.00 each");
    println!("clean 2-bit pairs:         AB AD AC BD CD at w = 0.50");
    println!("blocked 2-bit pair:        BC at w = 2·2¹ = 4.00 (D inside)");
    println!("clean 3-bit candidates:    BF CF ABD BCD ACD at w = 1/3");
    println!("blocked 3-bit candidate:   ABC at w = 3·2¹ = 6.00 (D inside)");
    println!("clean 4-bit clique:        ABCD at w = 0.25");
    println!("blocked 4-bit candidate:   BCF at w = 4·2¹ = 8.00 (D inside)");
    println!("incomplete (→8-bit cell):  AE at w = 1/5 = 0.20, ACE at w = 1/6 ≈ 0.17");
    println!("ILP optimum w/o incomplete: {{B,F}} + {{A,C,D}} + E  (3 registers)");
    println!("ILP optimum w/  incomplete: {{A,E}} + {{B,F}} + {{C,D}} (3 registers)");
    println!("area rule at 5 %: AE rejected (8-bit cell ≫ area(A)+area(E))");
    println!();
}

/// Fig. 5: bit-width histograms before/after composition.
fn fig5() {
    println!("== Fig. 5: MBR bit widths before & after composition ==");
    let lib = library();
    let presets = all_presets();
    let runs = sweep_presets(&presets, |spec| {
        run(spec, &lib, ComposerOptions::default(), Strategy::Ilp)
    });
    for (spec, RunResult { base, ours, .. }) in presets.iter().zip(runs) {
        print!("{:>3} before:", spec.name.to_uppercase());
        for w in [1u8, 2, 3, 4, 8] {
            print!(" {w}b:{:>5}", base.histogram.count(w));
        }
        println!("   total {:>5}", base.histogram.total());
        print!("{:>3}  after:", spec.name.to_uppercase());
        for w in [1u8, 2, 3, 4, 8] {
            print!(" {w}b:{:>5}", ours.histogram.count(w));
        }
        println!("   total {:>5}", ours.histogram.total());
        // Incomplete MBRs occupy widths between library sizes (3, 5, 6, 7).
        let odd: usize = ours
            .histogram
            .counts
            .iter()
            .filter(|(w, _)| ![1, 2, 4, 8].contains(*w))
            .map(|(_, n)| n)
            .sum();
        if odd > 0 {
            println!("      (plus {odd} incomplete MBRs at non-library connected widths)");
        }
    }
    println!();
}

/// Fig. 6: ILP vs greedy heuristic, normalized register count.
fn fig6() {
    println!("== Fig. 6: normalized total registers, ILP vs maximal-clique heuristic ==");
    let lib = library();
    let mut gains = Vec::new();
    let presets = all_presets();
    let runs = sweep_presets(&presets, |spec| {
        let ilp = run(spec, &lib, ComposerOptions::default(), Strategy::Ilp);
        let heur = run(spec, &lib, ComposerOptions::default(), Strategy::Heuristic);
        (ilp, heur)
    });
    for (spec, (ilp, heur)) in presets.iter().zip(runs) {
        let base = ilp.base.total_regs as f64;
        let n_ilp = ilp.ours.total_regs as f64 / base;
        let n_heur = heur.ours.total_regs as f64 / base;
        let gain = 100.0 * (n_heur - n_ilp) / n_heur;
        gains.push(gain);
        println!(
            "{:>3}: heuristic {:.3}  ilp {:.3}  (ilp saves {gain:.1} % vs heuristic)",
            spec.name.to_uppercase(),
            n_heur,
            n_ilp,
        );
    }
    println!(
        "average ILP advantage: {:.1} % (paper: 12 %)",
        gains.iter().sum::<f64>() / gains.len() as f64
    );
    println!();
}

/// Ablations on the design choices the paper calls out.
fn ablations() {
    println!("== Ablations (on D2) ==");
    let lib = library();
    let spec = mbr_workloads::d2();

    // Partition bound sweep (paper: QoR loss below ~20 nodes, no gain >30).
    println!("-- partition node bound sweep --");
    for bound in [10usize, 20, 30, 40] {
        let options = ComposerOptions {
            partition_max_nodes: bound,
            ..ComposerOptions::default()
        };
        let r = run(&spec, &lib, options, Strategy::Ilp);
        println!(
            "bound {bound:>2}: regs {} -> {} ({:.1} % saved), {} ms",
            r.base.total_regs,
            r.ours.total_regs,
            save_pct(r.base.total_regs as f64, r.ours.total_regs as f64),
            r.outcome.elapsed().as_millis()
        );
    }

    // Blocking weights on/off (Section 3.2's congestion control).
    println!("-- placement-aware weights --");
    for (label, on) in [("weights on ", true), ("weights off", false)] {
        let options = ComposerOptions {
            use_blocking_weights: on,
            ..ComposerOptions::default()
        };
        let r = run(&spec, &lib, options, Strategy::Ilp);
        println!(
            "{label}: regs {} -> {}, overflow edges {} -> {}, wl {:.2}/{:.2} -> {:.2}/{:.2} mm",
            r.base.total_regs,
            r.ours.total_regs,
            r.base.ovfl_edges,
            r.ours.ovfl_edges,
            r.base.wl_clk_mm,
            r.base.wl_other_mm,
            r.ours.wl_clk_mm,
            r.ours.wl_other_mm,
        );
    }

    // Incomplete MBRs on/off.
    println!("-- incomplete MBRs --");
    for (label, on) in [("incomplete on ", true), ("incomplete off", false)] {
        let options = ComposerOptions {
            allow_incomplete: on,
            ..ComposerOptions::default()
        };
        let r = run(&spec, &lib, options, Strategy::Ilp);
        println!(
            "{label}: regs {} -> {} ({} incomplete MBRs), area {:.0} -> {:.0} um2",
            r.base.total_regs,
            r.ours.total_regs,
            r.outcome.incomplete_mbrs,
            r.base.area_um2,
            r.ours.area_um2,
        );
    }

    // Useful skew on/off.
    println!("-- useful skew --");
    for (label, on) in [("skew on ", true), ("skew off", false)] {
        let options = ComposerOptions {
            apply_useful_skew: on,
            ..ComposerOptions::default()
        };
        let r = run(&spec, &lib, options, Strategy::Ilp);
        println!(
            "{label}: tns {:.2} -> {:.2} ns, failing endpoints {} -> {}, resized {}",
            r.base.tns_ns,
            r.ours.tns_ns,
            r.base.failing_endpoints,
            r.ours.failing_endpoints,
            r.outcome.resized,
        );
    }
    println!();
}

/// The future-work extension: decompose 8-bit MBRs and recompose (helps the
/// 8-bit-rich D4 most).
fn decompose() {
    println!("== Extension: decompose max-width MBRs, then recompose (paper future work) ==");
    let lib = library();
    for spec in [mbr_workloads::d4(), mbr_workloads::d1()] {
        let plain = run(&spec, &lib, ComposerOptions::default(), Strategy::Ilp);
        let decomp = run(
            &spec,
            &lib,
            ComposerOptions::default(),
            Strategy::DecomposeThenIlp,
        );
        let kept = decomp.outcome.decomposition_kept == Some(true);
        println!(
            "{:>3}: plain {} -> {} regs; decompose+recompose {} -> {} regs ({}), clk cap {:.2} -> {:.2} pF",
            spec.name.to_uppercase(),
            plain.base.total_regs,
            plain.ours.total_regs,
            decomp.base.total_regs,
            decomp.ours.total_regs,
            if kept { "decomposition kept" } else { "decomposition rejected: recomposition lost in dense regions" },
            decomp.base.clk_cap_pf,
            decomp.ours.clk_cap_pf,
        );
    }
    println!();
}

/// Candidate-space diagnostics per design (not a paper figure; the tuning
/// view behind `ComposerOptions`).
fn stats() {
    use mbr_core::CandidateStats;
    use mbr_sta::Sta;

    println!("== Candidate-space statistics ==");
    let lib = library();
    let presets = all_presets();
    let stats = sweep_presets(&presets, |spec| {
        let design = mbr_bench::generate(spec, &lib);
        let model = mbr_bench::model_for(spec);
        let sta = Sta::new(&design, &lib, model).expect("acyclic");
        CandidateStats::collect(&design, &lib, &sta, &ComposerOptions::default())
    });
    for (spec, s) in presets.iter().zip(stats) {
        println!(
            "{:>3}: composable {:>5} edges {:>6} | partitions {:>4} (max {:>2}, truncated {}) | singles {:>5} clean {:>6} blocked {:>6} incomplete {:>5} | clean fraction {:.2}",
            spec.name.to_uppercase(),
            s.composable,
            s.edges,
            s.partition_sizes.values().sum::<usize>(),
            s.max_partition(),
            s.truncated_partitions,
            s.singletons,
            s.clean_multi,
            s.blocked_multi,
            s.incomplete,
            s.clean_fraction(),
        );
    }
    println!();
}
