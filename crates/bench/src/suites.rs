//! The benchmark suites, shared between the `benches/` targets and the
//! `bench` binary.
//!
//! Each function builds one [`mbr_test::bench::Suite`], times its workloads,
//! and finishes it, which prints a summary table and writes
//! `BENCH_<suite>.json`. Run everything with
//! `cargo run --release -p mbr-bench --bin bench`, or a single suite with
//! `cargo bench -p mbr-bench --bench <suite>`. Set `MBR_BENCH_QUICK=1` for a
//! three-sample smoke run.

use mbr_core::{Composer, ComposerOptions};
use mbr_test::bench::Suite;
use mbr_workloads::DesignSpec;

use crate::{generate, library, model_for};

/// Table 1: the full composition flow per design, plus its stages.
///
/// The paper reports ~60 min CPU per design on 30–50 k-register netlists;
/// these presets are scaled ~18× down, so seconds here correspond to that
/// hour there.
pub fn table1() {
    use mbr_core::candidates::enumerate_candidates;
    use mbr_core::compat::CompatGraph;
    use mbr_sta::Sta;

    let lib = library();
    let mut suite = Suite::new("table1");
    for spec in [mbr_workloads::d1(), mbr_workloads::d3()] {
        let design = generate(&spec, &lib);
        let composer = Composer::new(ComposerOptions::default(), model_for(&spec));
        suite.bench(&format!("compose/{}", spec.name), || {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow succeeds")
        });
    }

    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();
    suite.bench("stages/sta_full", || {
        Sta::new(&design, &lib, model).expect("acyclic")
    });
    let sta = Sta::new(&design, &lib, model).expect("acyclic");
    suite.bench("stages/compat_graph", || {
        CompatGraph::build(&design, &lib, &sta, &options)
    });
    let compat = CompatGraph::build(&design, &lib, &sta, &options);
    suite.bench("stages/enumerate_candidates", || {
        enumerate_candidates(&design, &lib, &compat, &options)
    });
    suite.finish();
}

/// Fig. 5: the bit-width histogram and the full design metrics
/// (STA + CTS + congestion + wirelength) used for every table row.
pub fn fig5() {
    use mbr_core::{BitWidthHistogram, DesignMetrics};
    use mbr_cts::CtsConfig;
    use mbr_place::CongestionConfig;

    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);

    let mut suite = Suite::new("fig5");
    suite.bench("bitwidth_histogram", || BitWidthHistogram::measure(&design));
    suite.bench("design_metrics", || {
        DesignMetrics::measure(
            &design,
            &lib,
            model,
            &CtsConfig::default(),
            &CongestionConfig::default(),
        )
        .expect("metrics")
    });
    suite.finish();
}

/// Fig. 6: ILP selection vs the greedy heuristic on the same candidate sets
/// (the selection stage is what the figure isolates).
pub fn fig6() {
    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let composer = Composer::new(ComposerOptions::default(), model_for(&spec));

    let mut suite = Suite::new("fig6");
    suite.bench("ilp_flow", || {
        let mut work = design.clone();
        composer.compose(&mut work, &lib).expect("flow")
    });
    suite.bench("heuristic_flow", || {
        let mut work = design.clone();
        composer.compose_heuristic(&mut work, &lib).expect("flow")
    });
    suite.finish();
}

/// A ~500-register design: large enough for the ablation sweeps to
/// differentiate, small enough for repeated sampling.
fn ablation_spec() -> DesignSpec {
    DesignSpec {
        name: "bench_small".into(),
        seed: 0xBE7C,
        cluster_grid: 3,
        groups_per_cluster: 10,
        regs_per_group: 3..=6,
        width_mix: [0.45, 0.25, 0.18, 0.12],
        fixed_fraction: 0.12,
        scan_fraction: 0.25,
        ordered_scan_fraction: 0.2,
        extra_buffer_depth: 3,
        utilization: 0.4,
        clock_period: 500.0,
        clock_domains: 1,
        wire_scale: 1.0,
    }
}

/// Ablations for the design choices DESIGN.md calls out: partition bound
/// (runtime vs QoR), blocking weights, incomplete MBRs.
pub fn ablations() {
    let lib = library();
    let spec = ablation_spec();
    let design = generate(&spec, &lib);

    let mut suite = Suite::new("ablations");
    for bound in [10usize, 20, 30, 40] {
        let composer = Composer::new(
            ComposerOptions {
                partition_max_nodes: bound,
                ..ComposerOptions::default()
            },
            model_for(&spec),
        );
        suite.bench(&format!("partition_bound/{bound}"), || {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow")
        });
    }

    let cases = [
        ("default", ComposerOptions::default()),
        (
            "no_weights",
            ComposerOptions {
                use_blocking_weights: false,
                ..ComposerOptions::default()
            },
        ),
        (
            "no_incomplete",
            ComposerOptions {
                allow_incomplete: false,
                ..ComposerOptions::default()
            },
        ),
        (
            "no_skew_no_sizing",
            ComposerOptions {
                apply_useful_skew: false,
                apply_sizing: false,
                ..ComposerOptions::default()
            },
        ),
    ];
    for (name, options) in cases {
        let composer = Composer::new(options, model_for(&spec));
        suite.bench(&format!("features/{name}"), || {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow")
        });
    }
    suite.finish();
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Micro-benchmarks of the algorithmic substrates: the set-partitioning
/// branch-and-bound, the simplex LP, Bron–Kerbosch, and the convex hull.
pub fn solvers() {
    use mbr_geom::{convex_hull, Point};
    use mbr_graph::{BitGraph, UnGraph};
    use mbr_lp::{LpProblem, Sense, SetPartition};

    let mut suite = Suite::new("solvers");

    // A 30-element instance shaped like a composition partition: singletons
    // plus overlapping pair/quad candidates.
    let n = 30usize;
    let mut sp = SetPartition::new(n);
    for e in 0..n {
        sp.add_candidate(&[e], 1.0);
    }
    let mut state = 0x5EED_u64;
    for _ in 0..200 {
        let a = (xorshift(&mut state) % n as u64) as usize;
        let b = (a + 1 + (xorshift(&mut state) % 4) as usize).min(n - 1);
        if a != b {
            sp.add_candidate(&[a, b], 0.5);
        }
        let q: Vec<usize> = (0..4)
            .map(|_| (xorshift(&mut state) % n as u64) as usize)
            .collect();
        sp.add_candidate(&q, 0.25);
    }
    suite.bench("setpart_30_elements", || {
        sp.solve_bounded(50_000).expect("feasible")
    });

    // The Section 4.2 placement LP shape: 2 position vars + 4 helpers per
    // pin over 16 pins.
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, 100_000.0, 0.0);
    let y = lp.add_var(0.0, 100_000.0, 0.0);
    let mut state = 0xF00D_u64;
    for _ in 0..16 {
        let bx = (xorshift(&mut state) % 90_000) as f64;
        let by = (xorshift(&mut state) % 90_000) as f64;
        let hx = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let lx = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.0);
        let hy = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let ly = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.0);
        lp.add_constraint(&[(hx, 1.0)], Sense::Ge, bx);
        lp.add_constraint(&[(hx, 1.0), (x, -1.0)], Sense::Ge, 0.0);
        lp.add_constraint(&[(lx, 1.0)], Sense::Le, bx);
        lp.add_constraint(&[(lx, 1.0), (x, -1.0)], Sense::Le, 0.0);
        lp.add_constraint(&[(hy, 1.0)], Sense::Ge, by);
        lp.add_constraint(&[(hy, 1.0), (y, -1.0)], Sense::Ge, 0.0);
        lp.add_constraint(&[(ly, 1.0)], Sense::Le, by);
        lp.add_constraint(&[(ly, 1.0), (y, -1.0)], Sense::Le, 0.0);
    }
    suite.bench("simplex_placement_lp_16_pins", || {
        lp.solve().expect("feasible")
    });

    // A 30-node graph at ~50 % density — the partition-bound worst case.
    let n = 30;
    let mut g = UnGraph::new(n);
    let mut state = 0xBEEF_u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if xorshift(&mut state) % 100 < 50 {
                g.add_edge(i, j);
            }
        }
    }
    let nodes: Vec<usize> = (0..n).collect();
    let bg = BitGraph::from_subgraph(&g, &nodes);
    suite.bench("bron_kerbosch_30_nodes", || bg.maximal_cliques());

    let mut state = 0xCAFE_u64;
    let pts: Vec<Point> = (0..64)
        .map(|_| {
            Point::new(
                (xorshift(&mut state) % 100_000) as i64,
                (xorshift(&mut state) % 100_000) as i64,
            )
        })
        .collect();
    suite.bench("convex_hull_64_corners", || convex_hull(&pts));

    suite.finish();
}

/// Observability cost: the full d1 flow with no sink installed (the
/// default every caller pays — counters reduce to a thread-local check and
/// spans are inert) versus under a live counting sink. The first number is
/// the "no-op overhead" budget DESIGN.md §8 commits to; the delta to the
/// second is the opt-in price of counting.
pub fn obs() {
    use mbr_obs::{with_sink, CounterTotals};
    use std::sync::Arc;

    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let composer = Composer::new(ComposerOptions::default(), model_for(&spec));

    let mut suite = Suite::new("obs");
    suite.bench("flow_d1/no_sink", || {
        let mut work = design.clone();
        composer.compose(&mut work, &lib).expect("flow")
    });
    suite.bench("flow_d1/counting_sink", || {
        let totals = Arc::new(CounterTotals::default());
        with_sink(totals, || {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow")
        })
    });

    // Regression guard: incremental STA dedupes its per-net refreshes, so
    // the seed set scales with the touched fan-out, not with touched pins ×
    // net degree. Before the dedupe, d1 averaged ~955 seed pins per update;
    // after, ~31. The bound is loose on purpose — it catches the quadratic
    // blow-up coming back, not workload drift.
    let totals = Arc::new(CounterTotals::default());
    with_sink(totals.clone(), || {
        let mut work = design.clone();
        composer.compose(&mut work, &lib).expect("flow");
    });
    let t = totals.totals();
    let updates = t.get("sta.incremental_updates").copied().unwrap_or(0);
    let seeds = t.get("sta.incremental.seed_pins").copied().unwrap_or(0);
    assert!(
        updates > 0 && seeds < updates * 200,
        "sta.incremental.seed_pins regressed: {seeds} seeds over {updates} updates"
    );

    suite.finish();
}

/// Parallel scaling: the full d1 flow at 1/2/4/8 worker threads (the
/// [`ComposerOptions::threads`] knob that `MBR_THREADS` feeds), plus the
/// raw `par_map` dispatch overhead. The thread sweep is the evidence
/// behind the README scaling numbers; outputs are identical at every
/// count, so the sweep measures pure scheduling.
pub fn par() {
    let lib = library();
    let spec = mbr_workloads::d1();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);

    let mut suite = Suite::new("par");
    for threads in [1usize, 2, 4, 8] {
        let composer = Composer::new(
            ComposerOptions {
                threads,
                ..ComposerOptions::default()
            },
            model,
        );
        suite.bench(&format!("flow_d1/threads_{threads}"), || {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow")
        });
    }

    // Raw executor cost: tiny tasks over a large slice measure the chunked
    // queue and the ordered collection, not the per-item work.
    let items: Vec<u64> = (0..100_000).collect();
    for threads in [1usize, 8] {
        suite.bench(&format!("par_map_overhead/threads_{threads}"), || {
            mbr_par::par_map(threads, &items, |_, &x| x.wrapping_mul(2_654_435_761))
        });
    }
    suite.finish();
}

/// Incremental re-composition: a persistent [`CompositionSession`] taking
/// one ECO per sample versus a from-scratch batch compose of the same
/// mutated design — the cost a flow without sessions pays per ECO
/// iteration. The two arms produce byte-identical results (the `check
/// --eco-seed` differential proves it); this suite measures what the reuse
/// buys. A counter guard asserts the incremental pass does strictly less
/// STA seeding and candidate-enumeration work than the batch pass on every
/// preset, so the wall-clock win is load-bearing, not noise.
pub fn incr() {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use mbr_core::{apply_eco, CompositionSession};
    use mbr_obs::{with_sink, CounterTotals};
    use mbr_workloads::eco_script_for;

    let lib = library();
    let mut suite = Suite::new("incr");
    for spec in mbr_workloads::all_presets() {
        let design = generate(&spec, &lib);
        let model = model_for(&spec);
        let options = ComposerOptions::default();
        // A long deterministic ECO stream; every sample of either arm folds
        // in the next one, so both arms measure the same steady-state
        // "one ECO, one recompose" iteration.
        let script = eco_script_for(&spec, &design, &lib, 1024);

        {
            let mut work = design.clone();
            let mut work_model = model;
            let mut step = 0usize;
            let opts = options.clone();
            let (lib, script) = (&lib, &script);
            suite.bench(&format!("full/{}", spec.name), move || {
                let eco = &script.ecos[step % script.ecos.len()];
                step += 1;
                apply_eco(&mut work, &mut work_model, lib, eco).expect("eco applies");
                let mut pass = work.clone();
                Composer::new(opts.clone(), work_model)
                    .compose(&mut pass, lib)
                    .expect("flow")
            });
        }

        {
            let mut session =
                CompositionSession::open(design.clone(), &lib, options.clone(), model)
                    .expect("session opens");
            let mut step = 0usize;
            let script = &script;
            suite.bench(&format!("incr/{}", spec.name), move || {
                let eco = &script.ecos[step % script.ecos.len()];
                step += 1;
                session.apply(eco).expect("eco applies");
                session.recompose().expect("flow");
                session.outcome().registers_after
            });
        }

        // Counter guard: same single ECO, instrumented once per arm.
        let observed = |f: &mut dyn FnMut()| -> BTreeMap<String, u64> {
            let totals = Arc::new(CounterTotals::default());
            with_sink(totals.clone(), &mut *f);
            totals.totals()
        };
        let full = {
            let mut work = design.clone();
            let mut work_model = model;
            apply_eco(&mut work, &mut work_model, &lib, &script.ecos[0]).expect("eco applies");
            let composer = Composer::new(options.clone(), work_model);
            observed(&mut || {
                let mut pass = work.clone();
                composer.compose(&mut pass, &lib).expect("flow");
            })
        };
        let incr = {
            let mut session =
                CompositionSession::open(design.clone(), &lib, options.clone(), model)
                    .expect("session opens");
            session.apply(&script.ecos[0]).expect("eco applies");
            observed(&mut || {
                session.recompose().expect("flow");
            })
        };
        let get = |t: &BTreeMap<String, u64>, k: &str| t.get(k).copied().unwrap_or(0);
        let seeds = |t: &BTreeMap<String, u64>| {
            get(t, "sta.full.seed_pins") + get(t, "sta.incremental.seed_pins")
        };
        assert!(
            seeds(&incr) < seeds(&full),
            "{}: incremental STA seeded {} pins, batch {} — reuse regressed",
            spec.name,
            seeds(&incr),
            seeds(&full),
        );
        for key in [
            "core.candidates.subsets_visited",
            "core.candidates.enumerated",
        ] {
            assert!(
                get(&incr, key) < get(&full, key),
                "{}: {key} incremental {} vs batch {} — partition memo regressed",
                spec.name,
                get(&incr, key),
                get(&full, key),
            );
        }
    }
    suite.finish();
}

/// Paper-scale presets: stage timings on d6 (≈20 k registers) always, and
/// — in full (non-quick) runs — a complete bounded compose of d6 plus
/// netlist generation of d7/d8 (≈100 k / ≈500 k registers). Full composes
/// of d7/d8 are out of a bench harness's budget (minutes per call times
/// the minimum sample count); the d6 compose is the headline paper-scale
/// number, and `tests/file_scale.rs` covers d6 correctness end to end.
/// Every measurement's observed pass attaches the pruning counters
/// (`core.candidates.filtered`, `lp.setpart.lp_bound_cuts`, …) to
/// `BENCH_scale.json`, so scale regressions trace to algorithmic work.
pub fn scale() {
    use mbr_core::candidates::enumerate_candidates;
    use mbr_core::compat::CompatGraph;
    use mbr_sta::Sta;

    let quick = std::env::var("MBR_BENCH_QUICK").is_ok_and(|v| v != "0");
    let lib = library();
    let mut suite = Suite::new("scale");

    let spec = mbr_workloads::d6();
    let design = generate(&spec, &lib);
    let model = model_for(&spec);
    let options = ComposerOptions::default();

    suite.bench("generate/d6", || spec.generate(&lib));
    suite.bench("stages/sta_full/d6", || {
        Sta::new(&design, &lib, model).expect("acyclic")
    });
    let sta = Sta::new(&design, &lib, model).expect("acyclic");
    suite.bench("stages/compat_graph/d6", || {
        CompatGraph::build(&design, &lib, &sta, &options)
    });
    if !quick {
        let compat = CompatGraph::build(&design, &lib, &sta, &options);
        suite.bench("stages/enumerate_candidates/d6", || {
            enumerate_candidates(&design, &lib, &compat, &options)
        });
        let composer = Composer::new(options.clone(), model);
        suite.bench("compose/d6", || {
            let mut work = design.clone();
            composer.compose(&mut work, &lib).expect("flow succeeds")
        });
        for spec in [mbr_workloads::d7(), mbr_workloads::d8()] {
            suite.bench(&format!("generate/{}", spec.name), || spec.generate(&lib));
        }
    }
    suite.finish();
}

/// The arena/SoA hot path under a thread sweep: a full compose of every
/// scaled preset (d1–d5, plus d6 when `MBR_SCALE_TESTS=1`) at 1/2/4/8
/// worker threads, with the work counters of an observed pass attached to
/// each measurement in `BENCH_soa.json`. A per-preset counter guard then
/// asserts the *entire* counter map — `lp.setpart.nodes_explored`
/// included — is identical at every thread count: the parallel-B&B
/// ordered-commit protocol and the buffered-observability replay promise
/// thread-invariant work accounting, and this suite is the standing
/// evidence. Wall-clock scales; the algorithm does not change.
pub fn soa() {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use mbr_obs::{with_sink, CounterTotals};

    let lib = library();
    let mut suite = Suite::new("soa");
    let mut specs = mbr_workloads::all_presets();
    if std::env::var("MBR_SCALE_TESTS").is_ok_and(|v| v != "0") {
        specs.push(mbr_workloads::d6());
    }
    for spec in specs {
        let design = generate(&spec, &lib);
        let model = model_for(&spec);
        let mut per_thread: BTreeMap<usize, BTreeMap<String, u64>> = BTreeMap::new();
        for threads in [1usize, 2, 4, 8] {
            let composer = Composer::new(
                ComposerOptions {
                    threads,
                    ..ComposerOptions::default()
                },
                model,
            );
            suite.bench(&format!("compose/{}/threads_{threads}", spec.name), || {
                let mut work = design.clone();
                composer.compose(&mut work, &lib).expect("flow")
            });
            // One more observed pass for the invariance guard (the pass
            // `bench` observes is attached to the JSON, not returned).
            let totals = Arc::new(CounterTotals::default());
            with_sink(totals.clone(), || {
                let mut work = design.clone();
                composer.compose(&mut work, &lib).expect("flow");
            });
            per_thread.insert(threads, totals.totals());
        }
        let reference = per_thread.get(&1).expect("serial sweep ran").clone();
        assert!(
            reference.get("lp.setpart.nodes_explored").copied() > Some(0),
            "{}: compose explored no B&B nodes — the guard would be vacuous",
            spec.name,
        );
        for (threads, totals) in &per_thread {
            assert_eq!(
                totals, &reference,
                "{}: counter totals diverged at {threads} threads — \
                 thread-invariant work accounting regressed",
                spec.name,
            );
        }
    }
    suite.finish();
}

/// Runs every suite, in a deterministic order.
pub fn run_all() {
    table1();
    fig5();
    fig6();
    ablations();
    solvers();
    obs();
    par();
    incr();
    scale();
    soa();
}
