//! The `mbr-lint` CLI: static analysis over the whole workspace.
//!
//! ```text
//! cargo run --release --bin mbr-lint -- [options]
//!
//!   --root <dir>         workspace root to scan (default: .)
//!   --only <R1,R2>       run only these rules
//!   --skip <R1,R2>       run all rules except these
//!   --baseline <file>    P1 baseline path (default: <root>/LINT_baseline.txt)
//!   --update-baseline    rewrite the baseline from current P1 counts
//!   --json <file>        report path (default: <root>/target/LINT_report.json)
//!   --no-json            skip writing the JSON report
//!   --list-rules         print the rule catalog and exit
//! ```
//!
//! Exits 0 when clean, 1 on any error-severity finding (including a P1
//! baseline regression), 2 on usage or I/O errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use mbr_lint::{run, Options, Rule};

fn usage() -> ! {
    eprintln!(
        "usage: mbr-lint [--root <dir>] [--only R1,R2] [--skip R1,R2] \
         [--baseline <file>] [--update-baseline] [--json <file>] [--no-json] [--list-rules]"
    );
    std::process::exit(2);
}

fn parse_rules(spec: &str) -> BTreeSet<Rule> {
    let mut rules = BTreeSet::new();
    for id in spec.split(',').filter(|s| !s.is_empty()) {
        match Rule::from_id(id.trim()) {
            Some(r) => {
                rules.insert(r);
            }
            None => {
                eprintln!("unknown rule `{id}` (see --list-rules)");
                usage();
            }
        }
    }
    rules
}

fn main() -> ExitCode {
    let mut opts = Options::new(&PathBuf::from("."));
    let mut json: Option<PathBuf> = None;
    let mut no_json = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")),
            "--only" => opts.enabled = parse_rules(&value("--only")),
            "--skip" => {
                for r in parse_rules(&value("--skip")) {
                    opts.enabled.remove(&r);
                }
            }
            "--baseline" => opts.baseline_path = Some(PathBuf::from(value("--baseline"))),
            "--update-baseline" => opts.update_baseline = true,
            "--json" => json = Some(PathBuf::from(value("--json"))),
            "--no-json" => no_json = true,
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{r}  {}", r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    opts.json_out = if no_json {
        None
    } else {
        Some(json.unwrap_or_else(|| opts.root.join("target").join("LINT_report.json")))
    };

    match run(&opts) {
        Ok(outcome) => {
            print!("{}", outcome.report.render_human());
            if outcome.baseline_written {
                println!(
                    "mbr-lint: baseline rewritten ({} P1 site(s) accepted)",
                    outcome.report.p1_total()
                );
            }
            if outcome.exit_code() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mbr-lint: {e}");
            ExitCode::from(2)
        }
    }
}
