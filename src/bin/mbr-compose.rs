//! `mbr-compose` — command-line front end to the composition flow.
//!
//! ```text
//! mbr-compose --lib cells.mbrlib --design in.design --out composed.design \
//!             [--period 1000] [--no-incomplete] [--no-weights] [--no-skew] \
//!             [--heuristic] [--decompose] [--stitch-scan] [--partition-bound 30] \
//!             [--eco script.eco] [--passes 4] [--report]
//! ```
//!
//! Reads a register library (`.mbrlib`) and a placed design (`.design`),
//! runs the DAC'17 composition flow, prints a Table-1-style report, and
//! writes the composed design. Exits non-zero on any parse or flow error.
//! Set `MBR_TRACE=<path>` to capture a JSONL trace of the run; pass
//! `--report` for a per-stage timing table plus a span/counter summary.
//!
//! With `--eco <file>` the run becomes *incremental*: a
//! [`mbr::core::CompositionSession`] composes the design once, then the
//! ECO script (see [`mbr::core::EcoScript`] for the line format) is split
//! across `--passes` (default 1) incremental re-compositions, each reusing
//! the timing graph, compatibility cache and partition memo of the passes
//! before it. The written design is the final pass's composed result —
//! byte-identical to what a batch run on the mutated design would produce.

use std::process::ExitCode;

use mbr::core::{Composer, ComposerOptions, CompositionSession, DesignMetrics, EcoScript};
use mbr::cts::CtsConfig;
use mbr::liberty::Library;
use mbr::netlist::Design;
use mbr::place::CongestionConfig;
use mbr::sta::DelayModel;

struct Args {
    lib: String,
    design: String,
    out: Option<String>,
    period: f64,
    heuristic: bool,
    decompose: bool,
    report: bool,
    eco: Option<String>,
    passes: usize,
    options: ComposerOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: mbr-compose --lib <file.mbrlib> --design <file.design> [--out <file.design>]\n\
         \x20                 [--period <ps>] [--partition-bound <n>] [--region-radius <dbu>]\n\
         \x20                 [--no-incomplete] [--no-weights] [--no-skew] [--no-sizing]\n\
         \x20                 [--stitch-scan] [--heuristic] [--decompose]\n\
         \x20                 [--eco <file.eco>] [--passes <n>] [--report]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        lib: String::new(),
        design: String::new(),
        out: None,
        period: 1000.0,
        heuristic: false,
        decompose: false,
        report: false,
        eco: None,
        passes: 1,
        options: ComposerOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--lib" => args.lib = value("--lib"),
            "--design" => args.design = value("--design"),
            "--out" => args.out = Some(value("--out")),
            "--period" => args.period = value("--period").parse().unwrap_or_else(|_| usage()),
            "--partition-bound" => {
                args.options.partition_max_nodes = value("--partition-bound")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--region-radius" => {
                args.options.max_region_radius =
                    value("--region-radius").parse().unwrap_or_else(|_| usage())
            }
            "--no-incomplete" => args.options.allow_incomplete = false,
            "--no-weights" => args.options.use_blocking_weights = false,
            "--no-skew" => args.options.apply_useful_skew = false,
            "--no-sizing" => args.options.apply_sizing = false,
            "--stitch-scan" => args.options.stitch_scan_chains = true,
            "--heuristic" => args.heuristic = true,
            "--decompose" => args.decompose = true,
            "--report" => args.report = true,
            "--eco" => args.eco = Some(value("--eco")),
            "--passes" => args.passes = value("--passes").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    if args.lib.is_empty() || args.design.is_empty() {
        usage();
    }
    if args.eco.is_some() && (args.heuristic || args.decompose) {
        eprintln!("--eco drives the incremental session; it excludes --heuristic/--decompose");
        usage();
    }
    if args.passes == 0 {
        eprintln!("--passes must be at least 1");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let obs = mbr::obs::init_cli(args.report);
    let code = match run(&args, &obs) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mbr-compose: {e}");
            // No-op unless MBR_FLIGHT_RECORDER installed a ring.
            mbr::obs::dump_flight_recorder("error exit");
            ExitCode::FAILURE
        }
    };
    obs.finish();
    code
}

fn run(args: &Args, obs: &mbr::obs::CliObs) -> Result<(), Box<dyn std::error::Error>> {
    let lib_text = std::fs::read_to_string(&args.lib)?;
    let lib = Library::parse(&lib_text)?;
    let design_text = std::fs::read_to_string(&args.design)?;
    let mut design = Design::parse(&design_text, &lib)?;

    let issues = design.validate();
    if !issues.is_empty() {
        eprintln!(
            "warning: {} validation issues in the input design:",
            issues.len()
        );
        for issue in issues.iter().take(5) {
            eprintln!("  {issue}");
        }
    }

    let model = DelayModel {
        clock_period: args.period,
        ..DelayModel::default()
    };
    let cts = CtsConfig::default();
    let cong = CongestionConfig::default();

    let base = DesignMetrics::measure(&design, &lib, model, &cts, &cong)?;
    println!("design `{}` @ {} ps clock", design.name(), args.period);

    let (design, outcome, final_model) = if let Some(path) = &args.eco {
        let script = EcoScript::parse(&std::fs::read_to_string(path)?)?;
        let mut session = CompositionSession::open(design, &lib, args.options.clone(), model)?;
        let show = |tag: &str, o: &mbr::core::ComposeOutcome| {
            println!(
                "  pass {tag}: {} -> {} registers, {} merges, {:?}",
                o.registers_before,
                o.registers_after,
                o.merges,
                o.elapsed(),
            );
        };
        show("0 (full)", session.outcome());
        let per = script.ecos.len().div_ceil(args.passes).max(1);
        for (i, chunk) in script.ecos.chunks(per).enumerate() {
            for eco in chunk {
                session.apply(eco)?;
            }
            session.recompose()?;
            show(
                &format!("{} ({} ecos)", i + 1, chunk.len()),
                session.outcome(),
            );
        }
        let model = *session.model();
        (session.composed().clone(), session.outcome().clone(), model)
    } else {
        let composer = Composer::new(args.options.clone(), model);
        let outcome = if args.decompose {
            composer.compose_with_decomposition(&mut design, &lib)?
        } else if args.heuristic {
            composer.compose_heuristic(&mut design, &lib)?
        } else {
            composer.compose(&mut design, &lib)?
        };
        (design, outcome, model)
    };
    let ours = DesignMetrics::measure(&design, &lib, final_model, &cts, &cong)?;

    let row = |label: &str, m: &DesignMetrics| {
        println!(
            "  {label:>4}: regs {:>6}  clk cap {:>8.2} pF  clk bufs {:>4}  tns {:>10.2} ns  fail {:>5}  ovfl {:>5}",
            m.total_regs, m.clk_cap_pf, m.clk_bufs, m.tns_ns, m.failing_endpoints, m.ovfl_edges
        );
    };
    row("base", &base);
    row("ours", &ours);
    println!(
        "  flow: {} merges / {} registers consumed / {} incomplete / {} resized / {:?}",
        outcome.merges,
        outcome.merged_registers,
        outcome.incomplete_mbrs,
        outcome.resized,
        outcome.elapsed(),
    );
    if let Some(kept) = outcome.decomposition_kept {
        println!(
            "  decomposition: {}",
            if kept {
                "kept (it won)"
            } else {
                "rejected (plain flow was better)"
            }
        );
    }
    if let Some(stitch) = outcome.scan_stitch {
        println!(
            "  scan: {} chains over {} registers, {} dbu",
            stitch.chains, stitch.registers, stitch.wirelength
        );
    }

    if args.report {
        print!("{}", mbr::obs::summary::stage_table(&outcome.timings));
        if let Some(rec) = &obs.recorder {
            print!(
                "{}",
                mbr::obs::summary::Summary::from_events(&rec.events()).render()
            );
        }
    }

    if let Some(out) = &args.out {
        std::fs::write(out, design.to_design_text(&lib))?;
        println!("  wrote {out}");
    }
    Ok(())
}
