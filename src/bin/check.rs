//! Standalone invariant checker: runs the full composition flow on one or
//! more workload presets under maximum paranoia and reports every
//! diagnostic the cross-stage checkers emit.
//!
//! ```text
//! cargo run --bin check -- [--report] [--eco-seed <n>] [d1|d2|d3|d4|d5|all]...
//! ```
//!
//! Defaults to `d1`. Exits nonzero when any error-severity diagnostic
//! fires, so CI can gate on it. Set `MBR_TRACE=<path>` to capture a JSONL
//! trace of the run; pass `--report` for a span/counter summary.
//!
//! With `--eco-seed <n>` the checker instead runs the *incremental
//! differential*: per preset it opens a [`mbr::core::CompositionSession`],
//! applies a deterministic ECO script (seeded from the preset seed and
//! `n`), recomposes incrementally, and asserts the composed design is
//! byte-identical — and the outcome equal modulo wall-clock — to a fresh
//! batch compose of the same mutated design. Any divergence is a bug in
//! the session's reuse logic and fails the run.
//!
//! Adding `--session-only` drops the batch arm and the comparison: the run
//! is just open → ECO script → recompose, so an `MBR_TRACE` capture holds
//! *only* the session's counters — the input `mbr-perfdiff --baseline
//! PERF_baseline_incr.json` gates, pinning the reduced legalize/CTS work
//! (`place.legalize.rows_skipped` > 0 et al.) against regression to
//! full-pass behavior.

use std::fmt::Write as _;
use std::process::ExitCode;

use mbr::check::{check_mapping, check_netlist, check_scan, CheckReport, Paranoia};
use mbr::core::{apply_eco, infer_grid, Composer, ComposerOptions, CompositionSession};
use mbr::liberty::{standard_library, Library};
use mbr::obs::summary::Summary;
use mbr::sta::DelayModel;
use mbr::workloads::{all_presets, eco_script_for, paper_presets, sweep_presets, DesignSpec};

/// ECOs per differential script: enough to exercise both the move and the
/// retarget profile and to touch several partitions.
const ECO_SCRIPT_LEN: usize = 16;

struct Args {
    specs: Vec<DesignSpec>,
    report: bool,
    eco_seed: Option<u64>,
    session_only: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: check [--report] [--eco-seed <n> [--session-only]] [d1|..|d8|all]...   (default: d1)\n\
         `all` expands to the scaled suite d1..d5; the paper-scale presets\n\
         d6..d8 must be named explicitly."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut report = false;
    let mut eco_seed = None;
    let mut session_only = false;
    let mut names = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => report = true,
            "--session-only" => session_only = true,
            "--eco-seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("missing value for --eco-seed");
                    usage()
                });
                eco_seed = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--eco-seed expects an integer, got `{v}`");
                    usage()
                }));
            }
            "--help" | "-h" => usage(),
            other => names.push(other.to_string()),
        }
    }
    let mut specs = Vec::new();
    if names.is_empty() {
        names.push("d1".to_string());
    }
    for name in &names {
        if name == "all" {
            specs.extend(all_presets());
        } else if let Some(spec) = all_presets()
            .into_iter()
            .chain(paper_presets())
            .find(|s| &s.name == name)
        {
            specs.push(spec);
        } else {
            eprintln!("unknown preset: {name}");
            usage();
        }
    }
    if session_only && eco_seed.is_none() {
        eprintln!("--session-only requires --eco-seed");
        usage();
    }
    Args {
        specs,
        report,
        eco_seed,
        session_only,
    }
}

fn model_for(spec: &DesignSpec) -> DelayModel {
    let base = DelayModel::default();
    DelayModel {
        clock_period: spec.clock_period,
        wire_res_per_dbu: base.wire_res_per_dbu * spec.wire_scale,
        wire_cap_per_dbu: base.wire_cap_per_dbu * spec.wire_scale,
        ..base
    }
}

fn options_for_check() -> ComposerOptions {
    ComposerOptions {
        paranoia: Paranoia::Full,
        stitch_scan_chains: true,
        ..ComposerOptions::default()
    }
}

/// Runs one preset end to end, returning its stdout/stderr text and
/// whether it failed. Pure with respect to the process: printing and
/// observability replay happen on the main thread, in preset order.
fn run_spec(spec: &DesignSpec, lib: &Library) -> (String, String, bool) {
    let mut out = String::new();
    let mut failed = false;

    let mut design = spec.generate(lib);
    let composer = Composer::new(options_for_check(), model_for(spec));
    let outcome = match composer.compose(&mut design, lib) {
        Ok(o) => o,
        Err(e) => {
            return (out, format!("{}: flow failed: {e}\n", spec.name), true);
        }
    };

    // The in-flow checkpoints already audited every stage; sweep the
    // final design once more so post-flow state is covered even if a
    // future stage forgets its checkpoint.
    let mut report = CheckReport::new(Vec::new());
    report.extend(check_netlist(&design));
    report.extend(check_mapping(&design, lib));
    report.extend(check_scan(&design, lib));
    let grid = infer_grid(&design, lib);
    report.extend(mbr::check::check_placement(
        &design,
        &grid,
        &outcome.new_mbrs,
    ));

    let in_flow_errors = outcome
        .diagnostics
        .iter()
        .filter(|d| d.diagnostic.severity() == mbr::check::Severity::Error)
        .count();
    let _ = writeln!(
        out,
        "{}: {} -> {} registers, {} merges, {} diagnostics ({} errors)",
        spec.name,
        outcome.registers_before,
        outcome.registers_after,
        outcome.merges,
        outcome.diagnostics.len() + report.diagnostics.len(),
        in_flow_errors + report.error_count(),
    );
    // In-flow findings carry the checkpoint stage that caught them —
    // the first thing a triage wants to know.
    for d in &outcome.diagnostics {
        let _ = writeln!(out, "  {}: {d}", d.diagnostic.severity());
    }
    if !report.is_clean() {
        let _ = writeln!(out, "{report}");
    }
    if in_flow_errors + report.error_count() > 0 {
        failed = true;
    }
    (out, String::new(), failed)
}

/// Outcome text with wall-clock scrubbed — the only field two equivalent
/// runs may legitimately disagree on.
fn scrubbed(outcome: &mbr::core::ComposeOutcome) -> String {
    let mut o = outcome.clone();
    o.timings = Default::default();
    format!("{o:?}")
}

/// The incremental differential for one preset: session-with-ECOs versus
/// batch-on-mutated-design must agree to the byte. With `session_only` the
/// batch arm and the comparison are skipped — the run exists to put the
/// session's counters (alone) into an `MBR_TRACE` capture.
fn run_eco_spec(
    spec: &DesignSpec,
    lib: &Library,
    eco_seed: u64,
    session_only: bool,
) -> (String, String, bool) {
    let mut out = String::new();
    let design = spec.generate(lib);
    let model = model_for(spec);
    let options = options_for_check();

    let mut salted = spec.clone();
    salted.seed = spec
        .seed
        .wrapping_add(eco_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let script = eco_script_for(&salted, &design, lib, ECO_SCRIPT_LEN);

    // Session arm: full pass 0, then an incremental recompose of the ECOs.
    let mut session = match CompositionSession::open(design.clone(), lib, options.clone(), model) {
        Ok(s) => s,
        Err(e) => {
            return (
                out,
                format!("{}: session open failed: {e}\n", spec.name),
                true,
            )
        }
    };
    if let Err(e) = session.apply_script(&script) {
        return (out, format!("{}: eco rejected: {e}\n", spec.name), true);
    }
    if let Err(e) = session.recompose() {
        return (out, format!("{}: recompose failed: {e}\n", spec.name), true);
    }
    if session_only {
        let _ = writeln!(
            out,
            "{}: session-only ({} ecos, seed {}): {} -> {} registers, {} merges",
            spec.name,
            script.ecos.len(),
            eco_seed,
            session.outcome().registers_before,
            session.outcome().registers_after,
            session.outcome().merges,
        );
        return (out, String::new(), false);
    }

    // Batch arm: the same ECOs folded into a fresh clone, composed from
    // scratch through the one shared mutation path.
    let mut batch_design = design;
    let mut batch_model = model;
    for eco in &script.ecos {
        if let Err(e) = apply_eco(&mut batch_design, &mut batch_model, lib, eco) {
            return (
                out,
                format!("{}: batch eco rejected: {e}\n", spec.name),
                true,
            );
        }
    }
    let batch_outcome = match Composer::new(options, batch_model).compose(&mut batch_design, lib) {
        Ok(o) => o,
        Err(e) => {
            return (
                out,
                format!("{}: batch flow failed: {e}\n", spec.name),
                true,
            )
        }
    };

    let session_text = session.composed().to_design_text(lib);
    let batch_text = batch_design.to_design_text(lib);
    let design_ok = session_text == batch_text;
    let outcome_ok = scrubbed(session.outcome()) == scrubbed(&batch_outcome);
    let _ = writeln!(
        out,
        "{}: eco differential ({} ecos, seed {}): design {}, outcome {}",
        spec.name,
        script.ecos.len(),
        eco_seed,
        if design_ok { "identical" } else { "DIVERGED" },
        if outcome_ok { "identical" } else { "DIVERGED" },
    );
    if !design_ok {
        let a = session_text.lines();
        let diff = a
            .zip(batch_text.lines())
            .enumerate()
            .find(|(_, (s, b))| s != b);
        if let Some((i, (s, b))) = diff {
            let _ = writeln!(
                out,
                "  first diff at line {}:\n    session: {s}\n    batch:   {b}",
                i + 1
            );
        } else {
            let _ = writeln!(out, "  designs differ in length only");
        }
    }
    (out, String::new(), !(design_ok && outcome_ok))
}

fn main() -> ExitCode {
    let args = parse_args();
    let obs = mbr::obs::init_cli(args.report);
    let lib = standard_library();

    // The presets are independent designs, so they sweep in parallel
    // through the shared driver; it replays each worker's buffered
    // observability in preset order, so output, trace, and exit code are
    // identical at every thread count.
    let results = sweep_presets(&args.specs, |spec| match args.eco_seed {
        Some(seed) => run_eco_spec(spec, &lib, seed, args.session_only),
        None => run_spec(spec, &lib),
    });
    let mut failed = false;
    for (out, err, spec_failed) in results {
        print!("{out}");
        eprint!("{err}");
        failed |= spec_failed;
    }

    if let Some(rec) = &obs.recorder {
        print!("{}", Summary::from_events(&rec.events()).render());
    }
    obs.finish();

    // Fault injection: MBR_CHECK_INJECT_FAIL marks an otherwise-clean run
    // failed so the failure-path plumbing (flight-recorder dump, nonzero
    // exit) can be exercised deterministically without corrupting a design.
    if std::env::var_os("MBR_CHECK_INJECT_FAIL").is_some() {
        eprintln!("check: injected failure (MBR_CHECK_INJECT_FAIL)");
        failed = true;
    }

    if failed {
        // Post-mortem forensics for the failed run (no-op unless
        // MBR_FLIGHT_RECORDER installed a ring).
        mbr::obs::dump_flight_recorder("check errors");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
