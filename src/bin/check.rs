//! Standalone invariant checker: runs the full composition flow on one or
//! more workload presets under maximum paranoia and reports every
//! diagnostic the cross-stage checkers emit.
//!
//! ```text
//! cargo run --bin check -- [--report] [d1|d2|d3|d4|d5|all]...
//! ```
//!
//! Defaults to `d1`. Exits nonzero when any error-severity diagnostic
//! fires, so CI can gate on it. Set `MBR_TRACE=<path>` to capture a JSONL
//! trace of the run; pass `--report` for a span/counter summary.

use std::fmt::Write as _;
use std::process::ExitCode;

use mbr::check::{check_mapping, check_netlist, check_scan, CheckReport, Paranoia};
use mbr::core::{infer_grid, Composer, ComposerOptions};
use mbr::liberty::{standard_library, Library};
use mbr::obs::summary::Summary;
use mbr::obs::{SpanHandle, TaskObs};
use mbr::sta::DelayModel;
use mbr::workloads::{all_presets, DesignSpec};

fn usage() -> ! {
    eprintln!("usage: check [--report] [d1|d2|d3|d4|d5|all]...   (default: d1)");
    std::process::exit(2);
}

fn specs_from_args() -> (Vec<DesignSpec>, bool) {
    let mut report = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--report" {
                report = true;
                false
            } else {
                true
            }
        })
        .collect();
    if args.is_empty() {
        let d1 = all_presets()
            .into_iter()
            .filter(|s| s.name == "d1")
            .collect();
        return (d1, report);
    }
    let mut specs = Vec::new();
    for arg in &args {
        if arg == "all" {
            specs.extend(all_presets());
        } else if let Some(spec) = all_presets().into_iter().find(|s| &s.name == arg) {
            specs.push(spec);
        } else {
            eprintln!("unknown preset: {arg}");
            usage();
        }
    }
    (specs, report)
}

/// Runs one preset end to end, returning its stdout/stderr text and
/// whether it failed. Pure with respect to the process: printing and
/// observability replay happen on the main thread, in preset order.
fn run_spec(spec: &DesignSpec, lib: &Library) -> (String, String, bool) {
    let mut out = String::new();
    let mut failed = false;

    let mut design = spec.generate(lib);
    let base = DelayModel::default();
    let model = DelayModel {
        clock_period: spec.clock_period,
        wire_res_per_dbu: base.wire_res_per_dbu * spec.wire_scale,
        wire_cap_per_dbu: base.wire_cap_per_dbu * spec.wire_scale,
        ..base
    };
    let options = ComposerOptions {
        paranoia: Paranoia::Full,
        stitch_scan_chains: true,
        ..ComposerOptions::default()
    };
    let composer = Composer::new(options, model);
    let outcome = match composer.compose(&mut design, lib) {
        Ok(o) => o,
        Err(e) => {
            return (out, format!("{}: flow failed: {e}\n", spec.name), true);
        }
    };

    // The in-flow checkpoints already audited every stage; sweep the
    // final design once more so post-flow state is covered even if a
    // future stage forgets its checkpoint.
    let mut report = CheckReport::new(Vec::new());
    report.extend(check_netlist(&design));
    report.extend(check_mapping(&design, lib));
    report.extend(check_scan(&design, lib));
    let grid = infer_grid(&design, lib);
    report.extend(mbr::check::check_placement(
        &design,
        &grid,
        &outcome.new_mbrs,
    ));

    let in_flow_errors = outcome
        .diagnostics
        .iter()
        .filter(|d| d.diagnostic.severity() == mbr::check::Severity::Error)
        .count();
    let _ = writeln!(
        out,
        "{}: {} -> {} registers, {} merges, {} diagnostics ({} errors)",
        spec.name,
        outcome.registers_before,
        outcome.registers_after,
        outcome.merges,
        outcome.diagnostics.len() + report.diagnostics.len(),
        in_flow_errors + report.error_count(),
    );
    // In-flow findings carry the checkpoint stage that caught them —
    // the first thing a triage wants to know.
    for d in &outcome.diagnostics {
        let _ = writeln!(out, "  {}: {d}", d.diagnostic.severity());
    }
    if !report.is_clean() {
        let _ = writeln!(out, "{report}");
    }
    if in_flow_errors + report.error_count() > 0 {
        failed = true;
    }
    (out, String::new(), failed)
}

fn main() -> ExitCode {
    let (specs, report_requested) = specs_from_args();
    let obs = mbr::obs::init_cli(report_requested);
    let lib = standard_library();

    // The presets are independent designs, so they sweep in parallel.
    // Each worker buffers its report text and observability; the main
    // thread replays both in preset order, so output, trace, and exit
    // code are identical at every thread count.
    let handle = SpanHandle::current();
    let results = mbr::par::par_map(mbr::par::thread_count(), &specs, |_, spec| {
        TaskObs::capture(&handle, || run_spec(spec, &lib))
    });
    let mut failed = false;
    for ((out, err, spec_failed), task_obs) in results {
        task_obs.replay(&handle);
        print!("{out}");
        eprint!("{err}");
        failed |= spec_failed;
    }

    if let Some(rec) = &obs.recorder {
        print!("{}", Summary::from_events(&rec.events()).render());
    }
    obs.finish();

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
