//! Standalone invariant checker: runs the full composition flow on one or
//! more workload presets under maximum paranoia and reports every
//! diagnostic the cross-stage checkers emit.
//!
//! ```text
//! cargo run --bin check -- [d1|d2|d3|d4|d5|all]...
//! ```
//!
//! Defaults to `d1`. Exits nonzero when any error-severity diagnostic
//! fires, so CI can gate on it.

use std::process::ExitCode;

use mbr::check::{check_mapping, check_netlist, check_scan, CheckReport, Paranoia};
use mbr::core::{infer_grid, Composer, ComposerOptions};
use mbr::liberty::standard_library;
use mbr::sta::DelayModel;
use mbr::workloads::{all_presets, DesignSpec};

fn usage() -> ! {
    eprintln!("usage: check [d1|d2|d3|d4|d5|all]...   (default: d1)");
    std::process::exit(2);
}

fn specs_from_args() -> Vec<DesignSpec> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return all_presets()
            .into_iter()
            .filter(|s| s.name == "d1")
            .collect();
    }
    let mut specs = Vec::new();
    for arg in &args {
        if arg == "all" {
            specs.extend(all_presets());
        } else if let Some(spec) = all_presets().into_iter().find(|s| &s.name == arg) {
            specs.push(spec);
        } else {
            eprintln!("unknown preset: {arg}");
            usage();
        }
    }
    specs
}

fn main() -> ExitCode {
    let specs = specs_from_args();
    let lib = standard_library();
    let mut failed = false;

    for spec in specs {
        let mut design = spec.generate(&lib);
        let base = DelayModel::default();
        let model = DelayModel {
            clock_period: spec.clock_period,
            wire_res_per_dbu: base.wire_res_per_dbu * spec.wire_scale,
            wire_cap_per_dbu: base.wire_cap_per_dbu * spec.wire_scale,
            ..base
        };
        let options = ComposerOptions {
            paranoia: Paranoia::Full,
            stitch_scan_chains: true,
            ..ComposerOptions::default()
        };
        let composer = Composer::new(options, model);
        let outcome = match composer.compose(&mut design, &lib) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{}: flow failed: {e}", spec.name);
                failed = true;
                continue;
            }
        };

        // The in-flow checkpoints already audited every stage; sweep the
        // final design once more so post-flow state is covered even if a
        // future stage forgets its checkpoint.
        let mut report = CheckReport::new(outcome.diagnostics.clone());
        report.extend(check_netlist(&design));
        report.extend(check_mapping(&design, &lib));
        report.extend(check_scan(&design, &lib));
        let grid = infer_grid(&design, &lib);
        report.extend(mbr::check::check_placement(
            &design,
            &grid,
            &outcome.new_mbrs,
        ));

        println!(
            "{}: {} -> {} registers, {} merges, {} diagnostics ({} errors)",
            spec.name,
            outcome.registers_before,
            outcome.registers_after,
            outcome.merges,
            report.diagnostics.len(),
            report.error_count(),
        );
        if !report.is_clean() {
            println!("{report}");
        }
        if report.error_count() > 0 {
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
