//! Facade crate for the MBR composition workspace.
//!
//! Re-exports every subsystem under one roof so examples and downstream users
//! can depend on a single crate. See the individual crates for detail:
//!
//! * [`mbr_core`] — the DAC'17 composition engine (start here),
//! * [`mbr_workloads`] — synthetic benchmark designs `d1()..d5()`,
//! * [`mbr_netlist`] / [`mbr_liberty`] — design database and cell library,
//! * [`mbr_sta`] / [`mbr_place`] / [`mbr_cts`] — timing, placement and
//!   clock-tree substrates,
//! * [`mbr_lp`] / [`mbr_graph`] / [`mbr_geom`] — solver, clique and geometry
//!   machinery,
//! * [`mbr_check`] — cross-stage flow invariant checkers (see `cargo run
//!   --bin check`),
//! * [`mbr_obs`] — spans, counters, JSONL tracing and run summaries
//!   (`MBR_TRACE=<path>`, `--report`),
//! * [`mbr_par`] — deterministic parallel execution (`MBR_THREADS`).
//!
//! # Examples
//!
//! ```
//! use mbr::core::{Composer, ComposerOptions};
//! use mbr::liberty::standard_library;
//! use mbr::sta::DelayModel;
//!
//! let lib = standard_library();
//! let spec = mbr::workloads::DesignSpec {
//!     name: "doc".into(),
//!     seed: 1,
//!     cluster_grid: 2,
//!     groups_per_cluster: 4,
//!     regs_per_group: 3..=4,
//!     width_mix: [0.6, 0.2, 0.1, 0.1],
//!     fixed_fraction: 0.0,
//!     scan_fraction: 0.0,
//!     ordered_scan_fraction: 0.0,
//!     extra_buffer_depth: 2,
//!     utilization: 0.4,
//!     clock_period: 800.0,
//!     clock_domains: 1,
//!     wire_scale: 1.0,
//! };
//! let mut design = spec.generate(&lib);
//! let composer = Composer::new(ComposerOptions::default(), DelayModel::default());
//! let outcome = composer.compose(&mut design, &lib)?;
//! assert!(outcome.registers_after < outcome.registers_before);
//! # Ok::<(), mbr::core::ComposeError>(())
//! ```

pub use mbr_check as check;
pub use mbr_core as core;
pub use mbr_cts as cts;
pub use mbr_geom as geom;
pub use mbr_graph as graph;
pub use mbr_liberty as liberty;
pub use mbr_lp as lp;
pub use mbr_netlist as netlist;
pub use mbr_obs as obs;
pub use mbr_par as par;
pub use mbr_place as place;
pub use mbr_sta as sta;
pub use mbr_workloads as workloads;
