#!/usr/bin/env sh
# Fast CI entrypoint: the tier-1 gate plus a figure reproduction.
#
# Everything here runs fully offline — the workspace has zero external
# dependencies (see crates/testkit). Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> repro: fig3 weight table"
cargo run --release -q -p mbr-bench --bin repro -- fig3

echo "verify: OK"
