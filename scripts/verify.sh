#!/usr/bin/env sh
# Fast CI entrypoint: lints, the tier-1 gate, a figure reproduction, the
# cross-stage invariant check, the pruning differential suites, and a
# paper-scale (d6) bounded-compose smoke.
#
# Everything here runs fully offline — the workspace has zero external
# dependencies (see crates/testkit). Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> lint: cargo fmt --check"
cargo fmt --all --check

echo "==> lint: cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> lint: mbr-lint (determinism/observability/panic-safety invariants)"
cargo run --release -q --bin mbr-lint

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (MBR_THREADS=1, serial)"
MBR_THREADS=1 cargo test -q

echo "==> tier-1: cargo test -q (MBR_THREADS=4, parallel)"
MBR_THREADS=4 cargo test -q

echo "==> repro: fig3 weight table"
cargo run --release -q -p mbr-bench --bin repro -- fig3

echo "==> bench: par suite smoke (quick samples)"
MBR_BENCH_QUICK=1 MBR_BENCH_OUT=target cargo run --release -q -p mbr-bench --bin bench -- par

echo "==> bench: incr suite smoke (quick samples, counter guards)"
MBR_BENCH_QUICK=1 MBR_BENCH_OUT=target cargo run --release -q -p mbr-bench --bin bench -- incr

echo "==> bench: scale suite smoke (quick samples, paper-scale d6 stages)"
MBR_BENCH_QUICK=1 MBR_BENCH_OUT=target cargo run --release -q -p mbr-bench --bin bench -- scale
test -s target/BENCH_scale.json

echo "==> bench: soa suite smoke (quick samples, thread-invariance guard)"
MBR_BENCH_QUICK=1 MBR_BENCH_OUT=target cargo run --release -q -p mbr-bench --bin bench -- soa
test -s target/BENCH_soa.json

echo "==> pruning: solver-level differential suite (release)"
cargo test --release -q -p mbr-lp --test differential

echo "==> pruning: flow-level byte-identity differential (release)"
cargo test --release -q --test pruning

echo "==> scale: d6 bounded-compose smoke (release, zero check errors)"
MBR_SCALE_TESTS=1 cargo test --release -q --test file_scale -- --ignored

echo "==> check: flow invariants on d1 (traced)"
MBR_TRACE=target/trace-d1.jsonl cargo run --release -q --bin check -- d1

echo "==> check: incremental ECO differential (session vs batch, all presets)"
cargo run --release -q --bin check -- --eco-seed 1 all

echo "==> obs: validate the d1 trace"
cargo run --release -q -p mbr-obs --bin trace-validate -- target/trace-d1.jsonl

echo "==> obs: profile the d1 trace (hot paths + collapsed stacks)"
cargo run --release -q -p mbr-obs --bin mbr-profile -- \
    target/trace-d1.jsonl --top 15 --folded target/trace-d1.folded
test -s target/trace-d1.folded

echo "==> perf: second traced run must perfdiff clean (determinism)"
MBR_TRACE=target/trace-d1-b.jsonl cargo run --release -q --bin check -- d1 > /dev/null
cargo run --release -q -p mbr-obs --bin mbr-perfdiff -- \
    target/trace-d1.jsonl target/trace-d1-b.jsonl

echo "==> perf: regression gate against PERF_baseline.json"
cargo run --release -q -p mbr-obs --bin mbr-perfdiff -- \
    --baseline PERF_baseline.json target/trace-d1.jsonl --out target/PERFDIFF_report.txt

echo "==> check: session-only traced run (incremental work counters)"
MBR_TRACE=target/trace-session-d1.jsonl cargo run --release -q --bin check -- \
    --eco-seed 1 --session-only d1

echo "==> perf: incremental-work gate against PERF_baseline_incr.json"
cargo run --release -q -p mbr-obs --bin mbr-perfdiff -- \
    --baseline PERF_baseline_incr.json target/trace-session-d1.jsonl

echo "verify: OK"
