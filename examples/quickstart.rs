//! Quickstart: build a small placed design by hand, run the DAC'17
//! composition flow, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mbr::core::{Composer, ComposerOptions};
use mbr::geom::{Point, Rect};
use mbr::liberty::standard_library;
use mbr::netlist::{Design, PinKind, RegisterAttrs};
use mbr::sta::DelayModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A register library with 1/2/4/8-bit MBR cells at three drive grades.
    let lib = standard_library();

    // A 100 µm × 100 µm die with eight 1-bit flops in two nearby rows,
    // chained into a little shift pipeline.
    let die = Rect::new(Point::new(0, 0), Point::new(100_000, 100_000));
    let mut design = Design::new("quickstart", die);
    let clk = design.add_net("clk");
    let clk_port = design.add_input_port("CLK", Point::new(0, 600), 0.5);
    design.connect(design.inst(clk_port).pins[0], clk);

    let cell = lib.cell_by_name("DFF_1X1").expect("1-bit flop");
    let mut regs = Vec::new();
    for i in 0..8i64 {
        let loc = Point::new(2_000 + (i % 4) * 2_500, 1_200 + (i / 4) * 600);
        let r = design.add_register(
            format!("sr{i}"),
            &lib,
            cell,
            loc,
            RegisterAttrs::clocked(clk),
        );
        regs.push(r);
    }
    for pair in regs.windows(2) {
        let net = design.add_net(format!("n_{}", design.inst(pair[0]).name));
        design.connect(design.find_pin(pair[0], PinKind::Q(0)).expect("Q"), net);
        design.connect(design.find_pin(pair[1], PinKind::D(0)).expect("D"), net);
    }
    let out = design.add_output_port("OUT", Point::new(99_000, 1_200), 1.5);
    let tail = design.add_net("tail");
    design.connect(design.find_pin(regs[7], PinKind::Q(0)).expect("Q"), tail);
    design.connect(design.inst(out).pins[0], tail);

    println!(
        "before: {} registers, {} bits",
        design.live_register_count(),
        design.total_register_bits()
    );

    // Run the flow: compatibility → weighted ILP → mapping → placement LP →
    // legalization → useful skew → sizing.
    let composer = Composer::new(ComposerOptions::default(), DelayModel::default());
    let outcome = composer.compose(&mut design, &lib)?;

    println!(
        "after:  {} registers, {} bits ({} merges, {} incomplete, {} resized)",
        design.live_register_count(),
        design.total_register_bits(),
        outcome.merges,
        outcome.incomplete_mbrs,
        outcome.resized,
    );
    for &mbr in &outcome.new_mbrs {
        let inst = design.inst(mbr);
        let cell = lib.cell(inst.register_cell().expect("register"));
        println!(
            "  new MBR {} -> {} at {} ({} connected bits)",
            inst.name,
            cell.name,
            inst.loc,
            design.register_width(mbr),
        );
    }
    assert!(design.validate().is_empty(), "netlist stays valid");
    Ok(())
}
