//! Timing and clock-tree inspection: trace the worst paths of a composed
//! design and dump its clock tree as Graphviz DOT — the debugging loop an
//! engineer runs when composition results look off.
//!
//! ```text
//! cargo run --release --example timing_debug
//! ```

use mbr::core::{Composer, ComposerOptions};
use mbr::cts::{build_clock_trees, CtsConfig};
use mbr::liberty::standard_library;
use mbr::sta::{DelayModel, Sta};
use mbr::workloads::DesignSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = standard_library();
    let spec = DesignSpec {
        name: "debug".into(),
        seed: 99,
        cluster_grid: 2,
        groups_per_cluster: 10,
        regs_per_group: 3..=6,
        width_mix: [0.5, 0.25, 0.15, 0.10],
        fixed_fraction: 0.1,
        scan_fraction: 0.2,
        ordered_scan_fraction: 0.2,
        extra_buffer_depth: 4,
        utilization: 0.4,
        clock_period: 480.0,
        clock_domains: 1,
        wire_scale: 1.0,
    };
    let mut design = spec.generate(&lib);
    let model = DelayModel {
        clock_period: spec.clock_period,
        ..DelayModel::default()
    };

    let composer = Composer::new(ComposerOptions::default(), model);
    let outcome = composer.compose(&mut design, &lib)?;
    println!(
        "composed {}: {} -> {} registers",
        design.name(),
        outcome.registers_before,
        outcome.registers_after
    );

    // Worst paths after composition: who is still critical, and through how
    // much logic?
    let sta = Sta::new(&design, &lib, model)?;
    println!(
        "\nworst 5 paths (wns {:.1} ps, {} failing endpoints):",
        sta.report().wns,
        sta.report().failing_endpoints
    );
    for path in sta.worst_paths(5) {
        let start = design.inst(design.pin(path.pins[0]).inst);
        let end = design.inst(design.pin(path.endpoint).inst);
        println!(
            "  slack {:>8.1} ps  {:>3} pins  {} -> {}",
            path.slack,
            path.pins.len(),
            start.name,
            end.name,
        );
    }

    // Clock-tree topology: buffers per level and a DOT dump.
    let trees = build_clock_trees(&design, &CtsConfig::default());
    for tree in &trees {
        println!(
            "\nclock `{}`: {} sinks, {} buffers, {} levels",
            tree.net_name,
            tree.sink_count(),
            tree.buffer_count(),
            tree.levels()
        );
        let path = std::env::temp_dir().join(format!("clock_{}.dot", tree.net_name));
        std::fs::write(&path, tree.to_dot())?;
        println!("  DOT written to {}", path.display());
    }
    Ok(())
}
