//! Scan-aware composition: how scan partitions and ordered scan sections
//! constrain merging (paper Section 2, "scan compatibility"), and how
//! non-consecutive ordered registers fall back to per-bit-scan MBR cells
//! (Section 4.1).
//!
//! ```text
//! cargo run --release --example scan_aware
//! ```

use mbr::core::{Composer, ComposerOptions};
use mbr::geom::{Point, Rect};
use mbr::liberty::{standard_library, ScanStyle};
use mbr::netlist::{Design, RegisterAttrs, ScanInfo};
use mbr::sta::DelayModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = standard_library();
    let die = Rect::new(Point::new(0, 0), Point::new(100_000, 100_000));
    let mut design = Design::new("scan_demo", die);
    let clk = design.add_net("clk");
    let rst = design.add_net("rst_n");
    let se = design.add_net("scan_en");

    let cell = lib.cell_by_name("SDFF_R_1X1").expect("scan flop");
    let mut mk = |name: &str, x: i64, scan: Option<ScanInfo>| {
        let mut attrs = RegisterAttrs::clocked(clk);
        attrs.reset = Some(rst);
        attrs.scan_enable = Some(se);
        attrs.scan = scan;
        design.add_register(name, &lib, cell, Point::new(x, 600), attrs)
    };

    // Partition 0, ordered section 7 at consecutive positions 0..4: these
    // may merge into an internal-scan MBR that preserves the chain order.
    for (i, x) in [2_000i64, 4_000, 6_000, 8_000].into_iter().enumerate() {
        mk(
            &format!("ord{i}"),
            x,
            Some(ScanInfo {
                partition: 0,
                section: Some((7, i as u32)),
            }),
        );
    }
    // Partition 0, unordered: free to merge with each other (chains are
    // re-stitched after placement optimization) but never with the ordered
    // section above.
    for (i, x) in [12_000i64, 14_000, 16_000, 18_000].into_iter().enumerate() {
        mk(
            &format!("free{i}"),
            x,
            Some(ScanInfo {
                partition: 0,
                section: None,
            }),
        );
    }
    // Partition 1: a different chain; incompatible with everything above.
    mk(
        "lonely",
        22_000,
        Some(ScanInfo {
            partition: 1,
            section: None,
        }),
    );

    let before = design.live_register_count();
    let composer = Composer::new(ComposerOptions::default(), DelayModel::default());
    let outcome = composer.compose(&mut design, &lib)?;

    println!("registers: {before} -> {}", design.live_register_count());
    for &mbr in &outcome.new_mbrs {
        let inst = design.inst(mbr);
        let cell = lib.cell(inst.register_cell().expect("register"));
        let scan = inst.register_attrs().expect("register").scan;
        println!(
            "  {} -> {} (scan style {:?}, scan info {:?})",
            inst.name, cell.name, cell.scan_style, scan
        );
    }
    // The ordered section merges into one MBR and keeps its section tag;
    // the unordered flops merge separately; `lonely` stays single.
    let lonely = design.inst_by_name("lonely").expect("exists");
    assert!(
        design.inst(lonely).alive,
        "cross-partition merging is illegal"
    );
    assert!(outcome.new_mbrs.iter().any(|&m| lib
        .cell(design.inst(m).register_cell().expect("reg"))
        .scan_style
        != ScanStyle::None));
    Ok(())
}
