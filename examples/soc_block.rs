//! A Table-1-style run on a synthetic SoC block: generate the D1 benchmark,
//! measure it, compose, measure again, and print the before/after row — the
//! workload the paper's introduction motivates (an MBR-rich post-placement
//! database heading into CTS).
//!
//! ```text
//! cargo run --release --example soc_block
//! ```

use mbr::core::{Composer, ComposerOptions, DesignMetrics};
use mbr::cts::CtsConfig;
use mbr::liberty::standard_library;
use mbr::place::CongestionConfig;
use mbr::sta::DelayModel;
use mbr::workloads::d1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = standard_library();
    let spec = d1();
    let mut design = spec.generate(&lib);
    let base_model = DelayModel::default();
    let model = DelayModel {
        clock_period: spec.clock_period,
        wire_res_per_dbu: base_model.wire_res_per_dbu * spec.wire_scale,
        wire_cap_per_dbu: base_model.wire_cap_per_dbu * spec.wire_scale,
        ..base_model
    };
    let cts = CtsConfig::default();
    let cong = CongestionConfig::default();

    let base = DesignMetrics::measure(&design, &lib, model, &cts, &cong)?;
    let composer = Composer::new(ComposerOptions::default(), model);
    let outcome = composer.compose(&mut design, &lib)?;
    let ours = DesignMetrics::measure(&design, &lib, model, &cts, &cong)?;

    let print_row = |label: &str, m: &DesignMetrics| {
        println!(
            "{label:>5}: regs {:>5}  comp {:>5}  clk bufs {:>4}  clk cap {:>6.2} pF  tns {:>8.2} ns  fail {:>5}  ovfl {:>5}",
            m.total_regs, m.comp_regs, m.clk_bufs, m.clk_cap_pf, m.tns_ns, m.failing_endpoints,
            m.ovfl_edges,
        );
    };
    println!("design {} ({} cells)", design.name(), base.cells);
    print_row("base", &base);
    print_row("ours", &ours);
    println!(
        "composition: {} merges over {} registers in {:?} ({} partitions, {} candidates, {} B&B nodes)",
        outcome.merges,
        outcome.merged_registers,
        outcome.elapsed(),
        outcome.partitions,
        outcome.candidates_enumerated,
        outcome.ilp_nodes,
    );
    if let Some(skew) = outcome.skew {
        println!(
            "useful skew: adjusted {} MBRs, tns {:.2} -> {:.2} ns",
            skew.adjusted,
            skew.tns_before / 1000.0,
            skew.tns_after / 1000.0
        );
    }

    // The composed database can be written out in the `.design` text format
    // and re-read bit-exactly.
    let path = std::env::temp_dir().join("soc_block_composed.design");
    std::fs::write(&path, design.to_design_text(&lib))?;
    println!("wrote composed netlist to {}", path.display());

    // And rendered: new MBRs in red over the untouched fabric.
    let svg = mbr::place::render_svg(
        &design,
        &outcome.new_mbrs,
        &mbr::place::SvgOptions::default(),
    );
    let svg_path = std::env::temp_dir().join("soc_block_composed.svg");
    std::fs::write(&svg_path, svg)?;
    println!("wrote placement snapshot to {}", svg_path.display());
    Ok(())
}
