//! EDA file I/O: parse a cell library from `.mbrlib` text and a placed
//! design from `.design` text (both handwritten parsers), compose, and emit
//! the updated database.
//!
//! ```text
//! cargo run --release --example file_roundtrip
//! ```

use mbr::core::{Composer, ComposerOptions};
use mbr::liberty::Library;
use mbr::netlist::Design;
use mbr::sta::DelayModel;

const LIB_TEXT: &str = r#"
# A miniature MBR library: one reset-flop class at widths 1, 2 and 4.
library "mini28" {
  class DFF_R { ff reset }
  cell DFF_R_1 { class DFF_R; bits 1; drive X1;
                 area 2.2; rdrive 6.0; tintr 60; setup 35;
                 cclk 0.9; cd 0.5; leak 1.1; scan none; size 1100 600; }
  cell DFF_R_2 { class DFF_R; bits 2; drive X1;
                 area 4.1; rdrive 6.0; tintr 60; setup 35;
                 cclk 1.2; cd 0.5; leak 2.2; scan none; size 2100 600; }
  cell DFF_R_4 { class DFF_R; bits 4; drive X1;
                 area 7.6; rdrive 6.0; tintr 60; setup 35;
                 cclk 1.6; cd 0.5; leak 4.4; scan none; size 3800 600; }
}
"#;

const DESIGN_TEXT: &str = r#"
design "roundtrip" {
  die 0 0 80000 80000;
  comb_model NAND2 { inputs 2; area 0.8; cap 0.7; rdrive 4.0; tintr 18; size 400 600; }
  port CLK in (0 600) rdrive 0.5 net clk;
  port RST in (0 1200) rdrive 1.0 net rst;
  port IN0 in (0 1800) rdrive 2.0 net in0;
  port OUT0 out (79000 600) load 1.5 net out0;
  inst r0 reg DFF_R_1 (10000 600)  { clock clk; reset rst; d 0 in0;  q 0 q0; }
  inst r1 reg DFF_R_1 (13000 600)  { clock clk; reset rst; d 0 q0;   q 0 q1; }
  inst r2 reg DFF_R_1 (16000 600)  { clock clk; reset rst; d 0 q1;   q 0 q2; }
  inst r3 reg DFF_R_1 (19000 600)  { clock clk; reset rst; d 0 q2;   q 0 q3; }
  inst g0 comb NAND2  (21000 600)  { in 0 q3; in 1 q0; out out0; }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::parse(LIB_TEXT)?;
    let mut design = Design::parse(DESIGN_TEXT, &lib)?;
    println!(
        "parsed `{}` with {} cells from library `{}` ({} cells)",
        design.name(),
        design.live_inst_count(),
        lib.name(),
        lib.cell_count(),
    );
    assert!(design.validate().is_empty());

    let composer = Composer::new(ComposerOptions::default(), DelayModel::default());
    let outcome = composer.compose(&mut design, &lib)?;
    println!(
        "composed: {} -> {} registers",
        outcome.registers_before, outcome.registers_after
    );

    // Round-trip: write, re-parse, verify equivalence of the key metrics.
    let text = design.to_design_text(&lib);
    let reparsed = Design::parse(&text, &lib)?;
    assert_eq!(reparsed.live_register_count(), design.live_register_count());
    assert_eq!(reparsed.wirelength(), design.wirelength());
    println!("--- composed .design ---\n{text}");
    Ok(())
}
